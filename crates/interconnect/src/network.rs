//! The assembled torus network: injection, cycle-by-cycle switching,
//! delivery, ordering accounting and recovery draining.
//!
//! # Active-set kernel
//!
//! The per-cycle work is driven by worklists instead of exhaustive scans:
//!
//! * **Forwarding** visits only switches on an [`ActiveSet`] worklist. A
//!   switch is on the worklist iff it holds at least one queued packet
//!   (injection, link delivery and forwarding maintain per-port and
//!   per-switch queue counters incrementally). Fairness is unchanged: the
//!   per-cycle rotation and the per-switch/per-port round-robin pointers
//!   advance exactly as in the exhaustive scan, so the packet schedule — and
//!   therefore every metric — is bit-identical.
//! * **Link delivery** pops ripe arrivals from a due-cycle calendar
//!   (`ArrivalCalendar`, a ring-buffer timing wheel whose buckets and batch
//!   scratch space are reused, so steady-state delivery allocates nothing)
//!   instead of polling every link every cycle. Within one link arrivals are
//!   FIFO with non-decreasing due cycles, and arrivals on different links
//!   land in different buffers, so delivery state is independent of the
//!   order the calendar drains a cycle's batch in.

use std::collections::BTreeMap;

use specsim_base::{
    ActiveSet, Cycle, CycleDelta, FaultDirector, FaultKind, MessageSize, MsgQueue, NodeId,
    RoutingPolicy,
};

use crate::config::{BufferLayout, NetConfig};
use crate::deadlock::ProgressWatchdog;
use crate::ordering::OrderingTracker;
use crate::packet::{Packet, PacketTaint, VirtualNetwork};
use crate::pool::SlotPool;
use crate::routing::route_candidates;
use crate::stats::NetStats;
use crate::switch::{InTransit, Switch};
use crate::topology::{Direction, Torus, LINK_DIRECTIONS};

/// Ports of a switch in index order (the four link directions plus Local).
const ALL_PORTS: [Direction; 5] = [
    Direction::East,
    Direction::West,
    Direction::North,
    Direction::South,
    Direction::Local,
];

/// Error returned by [`Network::inject`] when the source injection queue is
/// full; carries the payload back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectError<P>(pub P);

/// A planned packet movement inside one switch, produced by the read-only
/// planning pass and executed by the mutating pass.
#[derive(Debug, Clone, Copy)]
struct MoveDecision {
    buffer: usize,
    action: MoveAction,
}

#[derive(Debug, Clone, Copy)]
enum MoveAction {
    Eject {
        queue: usize,
    },
    Forward {
        dir: Direction,
        target_buffer: usize,
        serialization: CycleDelta,
    },
}

/// Minimum number of buckets in an [`ArrivalCalendar`]'s timing wheel
/// (always a power of two). Each calendar is sized at construction from the network's
/// own scheduling horizon (data-message serialization plus switch pipeline
/// latency — see [`ArrivalCalendar::with_horizon`]) so slow links never park
/// every steady-state arrival in the overflow map; this constant is the
/// floor. Rarer horizons (fault-injected delays) still spill into overflow.
const MIN_WHEEL_BUCKETS: usize = 1024;

/// Due-cycle index over every in-transit link arrival: the entries for cycle
/// `c` list the `(switch, link direction)` pairs whose front in-transit
/// entry arrives at `c`. `deliver_phase` pops only ripe batches instead of
/// polling all `4 × num_nodes` links every cycle.
///
/// The index is a **ring-buffer timing wheel**: cycle `c` lives in bucket
/// `c % buckets`, and buckets are drained in place
/// ([`Vec::drain`] keeps their allocation), so steady-state scheduling
/// allocates nothing — unlike the `BTreeMap<Cycle, Vec>` predecessor, which
/// allocated one fresh `Vec` per distinct due cycle. Arrivals beyond the
/// wheel horizon (possible only with links slower than the Table 2 range)
/// spill into a `BTreeMap` overflow. `next` is the lowest cycle not yet
/// drained; because `next` is monotone and an entry overflows only when its
/// cycle is at least one full wheel lap past `next`, all overflow entries for a
/// cycle were scheduled before all wheel entries for it — draining
/// overflow-first preserves exact schedule order.
#[derive(Debug, Clone)]
struct ArrivalCalendar {
    wheel: Vec<Vec<(u32, u8)>>,
    overflow: BTreeMap<Cycle, Vec<(u32, u8)>>,
    /// Lowest cycle not yet drained. Arrivals are always scheduled at or
    /// after it (`pop_ripe_into` runs first in every tick and re-anchors it
    /// to `now + 1` when the calendar is empty).
    next: Cycle,
    /// Entries currently indexed (wheel + overflow).
    pending: usize,
}

impl Default for ArrivalCalendar {
    fn default() -> Self {
        Self::with_horizon(0)
    }
}

impl ArrivalCalendar {
    /// Builds a calendar whose wheel covers at least `horizon` cycles of
    /// look-ahead: the bucket count is `horizon + 1` rounded up to a power
    /// of two, floored at [`MIN_WHEEL_BUCKETS`]. Callers pass the longest
    /// *common* scheduling distance (serialization of the largest message
    /// plus switch latency); anything rarer overflows into the map.
    fn with_horizon(horizon: Cycle) -> Self {
        let buckets = (horizon as usize + 1)
            .next_power_of_two()
            .max(MIN_WHEEL_BUCKETS);
        Self {
            wheel: vec![Vec::new(); buckets],
            overflow: BTreeMap::new(),
            next: 0,
            pending: 0,
        }
    }

    fn bucket_of(&self, cycle: Cycle) -> usize {
        (cycle as usize) & (self.wheel.len() - 1)
    }

    fn schedule(&mut self, arrival: Cycle, switch: usize, dir: usize) {
        debug_assert!(
            arrival >= self.next,
            "arrival {arrival} scheduled behind the drain cursor {}",
            self.next
        );
        let entry = (switch as u32, dir as u8);
        if arrival - self.next < self.wheel.len() as Cycle {
            let b = self.bucket_of(arrival);
            self.wheel[b].push(entry);
        } else {
            self.overflow.entry(arrival).or_default().push(entry);
        }
        self.pending += 1;
    }

    /// Fills `out` with the earliest batch due at or before `now` (replacing
    /// its contents, keeping its allocation) and returns `true`, or returns
    /// `false` when nothing is ripe. Within a batch, entries come out in
    /// schedule order.
    fn pop_ripe_into(&mut self, now: Cycle, out: &mut Vec<(u32, u8)>) -> bool {
        out.clear();
        if self.pending == 0 {
            // Re-anchor the cursor so the wheel horizon always starts at the
            // present when traffic resumes.
            self.next = now + 1;
            return false;
        }
        while self.next <= now {
            let cycle = self.next;
            if let Some((&c, _)) = self.overflow.first_key_value() {
                if c == cycle {
                    let far = self.overflow.remove(&c).expect("key just observed");
                    out.extend_from_slice(&far);
                }
            }
            // `append` empties the bucket while keeping its allocation.
            let b = self.bucket_of(cycle);
            out.append(&mut self.wheel[b]);
            self.next += 1;
            if !out.is_empty() {
                self.pending -= out.len();
                return true;
            }
        }
        false
    }

    fn clear(&mut self) {
        for bucket in &mut self.wheel {
            bucket.clear();
        }
        self.overflow.clear();
        self.pending = 0;
    }
}

/// A 2D-torus interconnection network carrying packets with payload type `P`.
///
/// The network is advanced by calling [`Network::tick`] once per cycle.
/// Endpoints interact with it only through [`Network::inject`] and the
/// ejection-queue accessors; everything in between (switch arbitration, link
/// serialization, virtual-channel flow control, routing) is internal.
#[derive(Debug, Clone)]
pub struct Network<P> {
    torus: Torus,
    cfg: NetConfig,
    layout: BufferLayout,
    routing: RoutingPolicy,
    switches: Vec<Switch<P>>,
    eject: Vec<Vec<MsgQueue<Packet<P>>>>,
    eject_rr: Vec<usize>,
    /// Messages currently waiting in each node's ejection queues (incremental
    /// mirror of the queue lengths; lets endpoints skip idle nodes in O(1)).
    eject_pending: Vec<usize>,
    /// Worklist of nodes with `eject_pending > 0`, so endpoint ingest can
    /// walk only the nodes holding deliverable packets instead of scanning
    /// all `num_nodes` every cycle.
    eject_active: ActiveSet,
    ordering: OrderingTracker,
    stats: NetStats,
    watchdog: ProgressWatchdog,
    /// Per-node shared slot pools ([`specsim_base::BufferPolicy::SharedPool`]
    /// only; `None` in virtual-network provisioning, whose behavior this
    /// leaves bit-identical). A node's pool covers its switch input-port
    /// buffers (including the injection port) and its ejection queues: a slot
    /// is taken at injection or when a hop reserves downstream space, moves
    /// with the packet from node to node, and is freed when the endpoint
    /// drains the packet from an ejection queue. When the budget is split
    /// ([`NetConfig::pool_split`]), these pools cover only the switch side
    /// (input-port buffers and in-transit link reservations) and
    /// [`Network::endpoint_pools`] covers the ejection queues.
    pools: Option<Vec<SlotPool>>,
    /// Per-node endpoint slot pools, present only under a split budget: an
    /// ejecting packet trades its switch slot for an endpoint slot, so
    /// ejection back-pressure and switch congestion stop sharing one budget.
    endpoint_pools: Option<Vec<SlotPool>>,
    /// Number of pools currently at full occupancy (incremental mirror;
    /// feeds the O(1) deadlock-evidence check [`Network::has_exhausted_pool`]).
    full_pools: usize,
    /// Number of endpoint pools at full occupancy (split budgets only).
    full_endpoint_pools: usize,
    in_flight: usize,
    /// Worklist of switches holding at least one queued packet.
    active: ActiveSet,
    /// Due-cycle index over in-transit link arrivals.
    arrivals: ArrivalCalendar,
    /// Reusable batch buffer for draining the calendar (the wheel's buckets
    /// and this scratch space together make steady-state delivery
    /// allocation-free).
    arrival_scratch: Vec<(u32, u8)>,
    /// Forwarding rounds executed so far. Every switch's port round-robin
    /// pointer advances by exactly one per round whether or not the switch
    /// moved anything, so the per-switch pointer of the old exhaustive scan
    /// is equivalent to this single shared counter (mod the port count).
    forward_rounds: u64,
}

impl<P> Network<P> {
    /// Builds a network from a configuration.
    #[must_use]
    pub fn new(cfg: NetConfig) -> Self {
        let torus = match cfg.torus_dims {
            Some((w, h)) => {
                assert_eq!(
                    w * h,
                    cfg.num_nodes,
                    "torus_dims {w}x{h} does not cover num_nodes = {}",
                    cfg.num_nodes
                );
                Torus::rectangular(w, h)
            }
            None => Torus::new(cfg.num_nodes),
        };
        let layout = cfg.layout();
        let (pools, endpoint_pools) = match cfg.pool_split() {
            Some((switch_slots, endpoint_slots)) => (
                Some(vec![SlotPool::new(switch_slots); cfg.num_nodes]),
                Some(vec![SlotPool::new(endpoint_slots); cfg.num_nodes]),
            ),
            None => (
                cfg.pool_slots()
                    .map(|slots| vec![SlotPool::new(slots); cfg.num_nodes]),
                None,
            ),
        };
        let pooled = pools.is_some();
        let switches = (0..cfg.num_nodes)
            .map(|i| Switch::new(NodeId::from(i), &layout, pooled))
            .collect();
        let eject = (0..cfg.num_nodes)
            .map(|_| {
                (0..layout.ejection_queues())
                    .map(|_| match layout.ejection_capacity().filter(|_| !pooled) {
                        Some(c) => MsgQueue::bounded(c),
                        None => MsgQueue::unbounded(),
                    })
                    .collect()
            })
            .collect();
        let num_links = 4 * cfg.num_nodes;
        let routing = cfg.routing;
        Self {
            torus,
            layout,
            routing,
            switches,
            eject,
            eject_rr: vec![0; cfg.num_nodes],
            eject_pending: vec![0; cfg.num_nodes],
            eject_active: ActiveSet::new(cfg.num_nodes),
            ordering: OrderingTracker::new(),
            stats: NetStats::new(num_links),
            watchdog: ProgressWatchdog::new(cfg.stall_threshold),
            pools,
            endpoint_pools,
            full_pools: 0,
            full_endpoint_pools: 0,
            in_flight: 0,
            active: ActiveSet::new(cfg.num_nodes),
            // The longest common scheduling distance is a data message's
            // serialization plus the switch pipeline; sizing the wheel to
            // cover it keeps steady-state traffic out of the overflow map
            // even on slow (or custom slower-than-Table-2) links.
            arrivals: ArrivalCalendar::with_horizon(
                cfg.link_bandwidth
                    .serialization_cycles(specsim_base::DATA_MSG_BYTES)
                    + cfg.switch_latency,
            ),
            arrival_scratch: Vec::new(),
            forward_rounds: 0,
            cfg,
        }
    }

    /// Number of nodes (and switches).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.cfg.num_nodes
    }

    /// The topology object (for distance queries in tests and experiments).
    #[must_use]
    pub fn torus(&self) -> &Torus {
        &self.torus
    }

    /// The routing policy currently in force.
    #[must_use]
    pub fn routing(&self) -> RoutingPolicy {
        self.routing
    }

    /// Changes the routing policy at runtime. This is the forward-progress
    /// knob of Section 3.1: after a recovery the system "selectively
    /// disable\[s\] adaptive routing during re-execution".
    pub fn set_routing(&mut self, routing: RoutingPolicy) {
        self.routing = routing;
    }

    /// True when this network provisions buffers from shared per-node slot
    /// pools (the speculative Section 4 design, in which deadlock is
    /// possible).
    #[must_use]
    pub fn is_pooled(&self) -> bool {
        self.pools.is_some()
    }

    /// True when this network splits its slot budget between switch-side
    /// and endpoint-side pools ([`NetConfig::pool_split`]).
    #[must_use]
    pub fn is_pool_split(&self) -> bool {
        self.endpoint_pools.is_some()
    }

    /// Installs a per-virtual-network reservation of `r` slots in every
    /// node's pool (the conservative forward-progress mode applied during
    /// post-deadlock re-execution); `r = 0` returns to fully shared slots.
    /// Under a split budget the reservation applies to both sides.
    /// Returns `false` (and does nothing) when the network is not pooled.
    pub fn set_pool_reservation(&mut self, r: usize) -> bool {
        match &mut self.pools {
            Some(pools) => {
                for p in pools {
                    p.set_reservation(r);
                }
                if let Some(pools) = &mut self.endpoint_pools {
                    for p in pools {
                        p.set_reservation(r);
                    }
                }
                true
            }
            None => false,
        }
    }

    /// The per-virtual-network reservation currently in force (`None` when
    /// the network is not pooled).
    #[must_use]
    pub fn pool_reservation(&self) -> Option<usize> {
        self.pools.as_ref().map(|p| p[0].reservation())
    }

    /// Per-node pool occupancy (held slots) of the switch-side pools, for
    /// diagnostics and tests. Empty when the network is not pooled.
    #[must_use]
    pub fn pool_occupancy_snapshot(&self) -> Vec<usize> {
        self.pools
            .as_ref()
            .map(|pools| pools.iter().map(SlotPool::occupancy).collect())
            .unwrap_or_default()
    }

    /// Per-node endpoint pool occupancy under a split budget. Empty when
    /// the budget is unified (or the network is unpooled).
    #[must_use]
    pub fn endpoint_pool_occupancy_snapshot(&self) -> Vec<usize> {
        self.endpoint_pools
            .as_ref()
            .map(|pools| pools.iter().map(SlotPool::occupancy).collect())
            .unwrap_or_default()
    }

    fn pool_can(&self, node: usize, vnet: VirtualNetwork) -> bool {
        self.pools
            .as_ref()
            .map_or(true, |p| p[node].can_acquire(vnet.index()))
    }

    fn pool_acquire(&mut self, node: usize, vnet: VirtualNetwork) {
        if let Some(pools) = &mut self.pools {
            pools[node].acquire(vnet.index());
            if pools[node].occupancy() == pools[node].total() {
                self.full_pools += 1;
            }
        }
    }

    fn pool_release(&mut self, node: usize, vnet: VirtualNetwork) {
        if let Some(pools) = &mut self.pools {
            if pools[node].occupancy() == pools[node].total() {
                self.full_pools -= 1;
            }
            pools[node].release(vnet.index());
        }
    }

    /// True when an ejection at `node` can take the slot it needs: under a
    /// split budget an ejecting packet trades its switch slot for an
    /// endpoint slot, so the endpoint pool must have room; under a unified
    /// budget the packet keeps the slot it already holds.
    fn endpoint_can(&self, node: usize, vnet: VirtualNetwork) -> bool {
        self.endpoint_pools
            .as_ref()
            .map_or(true, |p| p[node].can_acquire(vnet.index()))
    }

    fn endpoint_acquire(&mut self, node: usize, vnet: VirtualNetwork) {
        if let Some(pools) = &mut self.endpoint_pools {
            pools[node].acquire(vnet.index());
            if pools[node].occupancy() == pools[node].total() {
                self.full_endpoint_pools += 1;
            }
        }
    }

    fn endpoint_release(&mut self, node: usize, vnet: VirtualNetwork) {
        if let Some(pools) = &mut self.endpoint_pools {
            if pools[node].occupancy() == pools[node].total() {
                self.full_endpoint_pools -= 1;
            }
            pools[node].release(vnet.index());
        }
    }

    /// Frees the slot held by a packet leaving an ejection queue: the
    /// endpoint pool under a split budget, the unified pool otherwise.
    fn release_ejected_slot(&mut self, node: usize, vnet: VirtualNetwork) {
        if self.endpoint_pools.is_some() {
            self.endpoint_release(node, vnet);
        } else {
            self.pool_release(node, vnet);
        }
    }

    /// True when at least one node's shared pool (switch- or endpoint-side)
    /// is at full occupancy — the evidence that ties a coherence-transaction
    /// timeout to buffer exhaustion (a detected buffer-dependency deadlock)
    /// rather than plain latency. Always `false` for unpooled networks.
    #[must_use]
    pub fn has_exhausted_pool(&self) -> bool {
        self.full_pools > 0 || self.full_endpoint_pools > 0
    }

    /// True when a packet of class `vnet` can be injected at `src` this
    /// cycle.
    #[must_use]
    pub fn can_inject(&self, src: NodeId, vnet: VirtualNetwork) -> bool {
        let b = self.layout.injection_buffer_index(vnet);
        self.switches[src.index()].ports[Direction::Local.index()].buffers[b].has_space()
            && self.pool_can(src.index(), vnet)
    }

    /// Injects a packet. On success the packet is stamped with a sequence
    /// number and queued at the source switch's local port; on failure the
    /// payload is returned so the caller can retry later.
    pub fn inject(
        &mut self,
        now: Cycle,
        src: NodeId,
        dst: NodeId,
        vnet: VirtualNetwork,
        size: MessageSize,
        payload: P,
    ) -> Result<(), InjectError<P>> {
        if !self.can_inject(src, vnet) {
            self.stats.injection_rejects.incr();
            return Err(InjectError(payload));
        }
        let seq = self.ordering.stamp(src, dst, vnet);
        let packet = Packet {
            src,
            dst,
            vnet,
            size,
            seq,
            injected_at: now,
            taint: PacketTaint::Clean,
            payload,
        };
        let b = self.layout.injection_buffer_index(vnet);
        let sw = &mut self.switches[src.index()];
        sw.ports[Direction::Local.index()].buffers[b]
            .queue
            .push(packet)
            .unwrap_or_else(|_| panic!("injection space was checked"));
        sw.ports[Direction::Local.index()].queued += 1;
        sw.queued_total += 1;
        self.pool_acquire(src.index(), vnet);
        self.active.insert(src.index());
        self.stats.injected.incr();
        self.in_flight += 1;
        Ok(())
    }

    /// Advances the network by one cycle: first delivers link arrivals into
    /// downstream buffers, then lets every switch forward up to one packet
    /// per input port.
    pub fn tick(&mut self, now: Cycle)
    where
        P: Clone,
    {
        self.tick_faulted(now, None);
    }

    /// [`Network::tick`] with an optional fault director. When present, the
    /// director's schedule is consulted at every link transmit (drop /
    /// duplicate / delay / corrupt), switch visit (stall / blackout window)
    /// and ejection (inbox-drop window). `None` is a strict no-op relative
    /// to [`Network::tick`] — the schedule stays bit-identical.
    pub fn tick_faulted(&mut self, now: Cycle, mut faults: Option<&mut FaultDirector>)
    where
        P: Clone,
    {
        if let Some(f) = faults.as_deref_mut() {
            f.advance(now);
        }
        self.deliver_phase(now, faults.as_deref());
        self.forward_phase(now, faults);
    }

    /// Messages currently inside the network fabric (injected but not yet
    /// placed in an ejection queue).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Total messages waiting in `node`'s ejection queues.
    #[must_use]
    pub fn ejection_len(&self, node: NodeId) -> usize {
        self.eject_pending[node.index()]
    }

    /// True when at least one delivered packet is waiting in `node`'s
    /// ejection queues. O(1); system layers use this to skip ingest polling
    /// for idle endpoints.
    #[must_use]
    pub fn has_ejectable(&self, node: NodeId) -> bool {
        self.eject_pending[node.index()] > 0
    }

    /// The lowest node index `>= from` whose ejection queues hold at least
    /// one deliverable packet, or `None` when no node at or past `from` does.
    /// Walking this cursor visits exactly the nodes a dense ascending scan
    /// with a [`Network::has_ejectable`] filter would, in the same order, but
    /// in time proportional to the nodes with work rather than `num_nodes`.
    #[must_use]
    pub fn next_ejectable_at_or_after(&self, from: usize) -> Option<usize> {
        self.eject_active.next_at_or_after(from)
    }

    /// Removes the next packet from `node`'s ejection queue for a specific
    /// virtual network (meaningful in virtual-channel mode; in shared-buffer
    /// mode all classes share one queue and this behaves like
    /// [`Network::eject_any`]).
    pub fn eject_from(&mut self, node: NodeId, vnet: VirtualNetwork) -> Option<Packet<P>> {
        let q = self.layout.ejection_index(vnet);
        let p = self.eject[node.index()][q].pop();
        if let Some(p) = &p {
            self.eject_pending[node.index()] -= 1;
            if self.eject_pending[node.index()] == 0 {
                self.eject_active.remove(node.index());
            }
            self.release_ejected_slot(node.index(), p.vnet);
        }
        p
    }

    /// Peeks the next packet that [`Network::eject_from`] would return.
    #[must_use]
    pub fn peek_from(&self, node: NodeId, vnet: VirtualNetwork) -> Option<&Packet<P>> {
        let q = self.layout.ejection_index(vnet);
        self.eject[node.index()][q].peek()
    }

    /// Removes the next packet from any of `node`'s ejection queues,
    /// rotating across queues for fairness.
    pub fn eject_any(&mut self, node: NodeId) -> Option<Packet<P>> {
        let i = node.index();
        if self.eject_pending[i] == 0 {
            return None;
        }
        let n = self.eject[i].len();
        for k in 0..n {
            let q = (self.eject_rr[i] + k) % n;
            if let Some(p) = self.eject[i][q].pop() {
                self.eject_rr[i] = (q + 1) % n;
                self.eject_pending[i] -= 1;
                if self.eject_pending[i] == 0 {
                    self.eject_active.remove(i);
                }
                self.release_ejected_slot(i, p.vnet);
                return Some(p);
            }
        }
        unreachable!("eject_pending said a packet was waiting")
    }

    /// Peeks the packet at the head of `node`'s single shared ejection queue
    /// (shared-buffer / worst-case modes). In virtual-channel mode this peeks
    /// the queue that the fairness rotation would serve next.
    #[must_use]
    pub fn peek_any(&self, node: NodeId) -> Option<&Packet<P>> {
        let i = node.index();
        let n = self.eject[i].len();
        (0..n)
            .map(|k| (self.eject_rr[i] + k) % n)
            .find_map(|q| self.eject[i][q].peek())
    }

    /// Network statistics.
    #[must_use]
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Point-to-point ordering statistics.
    #[must_use]
    pub fn ordering(&self) -> &OrderingTracker {
        &self.ordering
    }

    /// Mean utilization across every unidirectional link over `[0, now]`.
    #[must_use]
    pub fn mean_link_utilization(&self, now: Cycle) -> f64 {
        if now == 0 {
            return 0.0;
        }
        let busy: u64 = self
            .switches
            .iter()
            .flat_map(|s| s.links.iter())
            .map(|l| l.util.busy_cycles())
            .sum();
        let links = (4 * self.num_nodes()) as f64;
        (busy as f64 / (links * now as f64)).clamp(0.0, 1.0)
    }

    /// True when the fabric holds messages but none has moved for the
    /// watchdog threshold (a deadlock or a complete endpoint stall).
    #[must_use]
    pub fn is_stalled(&self, now: Cycle) -> bool {
        self.watchdog.is_stalled(now, self.in_flight)
    }

    /// Sets how many quiet cycles the progress watchdog tolerates before
    /// reporting a stall, overriding [`NetConfig::stall_threshold`] on a live
    /// network.
    pub fn set_stall_threshold(&mut self, threshold: u64) {
        self.watchdog = ProgressWatchdog::new(threshold);
    }

    /// Total messages queued at each switch (diagnostic snapshot).
    #[must_use]
    pub fn occupancy_snapshot(&self) -> Vec<usize> {
        self.switches.iter().map(Switch::occupancy).collect()
    }

    /// Drops every message in the fabric and the ejection queues (recovery
    /// drain; SafetyNet rollback discards all in-flight coherence messages).
    /// Returns the number of messages dropped.
    pub fn drain(&mut self, now: Cycle) -> usize {
        let mut dropped = 0;
        for sw in &mut self.switches {
            dropped += sw.clear();
        }
        for queues in &mut self.eject {
            for q in queues {
                dropped += q.len();
                q.clear();
            }
        }
        self.eject_pending.fill(0);
        self.eject_active.clear();
        if let Some(pools) = &mut self.pools {
            for p in pools {
                p.clear();
            }
        }
        if let Some(pools) = &mut self.endpoint_pools {
            for p in pools {
                p.clear();
            }
        }
        self.full_pools = 0;
        self.full_endpoint_pools = 0;
        self.in_flight = 0;
        self.active.clear();
        self.arrivals.clear();
        self.watchdog.reset(now);
        dropped
    }

    fn deliver_phase(&mut self, now: Cycle, faults: Option<&FaultDirector>) {
        let mut batch = std::mem::take(&mut self.arrival_scratch);
        while self.arrivals.pop_ripe_into(now, &mut batch) {
            for &(si, di) in &batch {
                let i = si as usize;
                let d = LINK_DIRECTIONS[di as usize];
                let InTransit {
                    arrival,
                    target_buffer,
                    packet,
                } = self.switches[i].links[d.index()]
                    .in_transit
                    .pop_front()
                    .expect("calendar entry without an in-transit message");
                debug_assert!(arrival <= now, "calendar delivered an unripe arrival");
                let j = self.torus.neighbor(self.switches[i].node, d).index();
                if faults.is_some_and(|f| f.switch_blacked_out(j)) {
                    // A blacked-out switch loses its arrivals: give back the
                    // buffer reservation and the slot the hop took, and the
                    // message simply ceases to exist.
                    let buf =
                        &mut self.switches[j].ports[d.opposite().index()].buffers[target_buffer];
                    debug_assert!(buf.reserved > 0, "blackout drop without a reservation");
                    buf.reserved -= 1;
                    self.pool_release(j, packet.vnet);
                    self.in_flight = self.in_flight.saturating_sub(1);
                    self.watchdog.record_progress(now);
                    continue;
                }
                let port = &mut self.switches[j].ports[d.opposite().index()];
                port.buffers[target_buffer].accept_reserved(packet);
                port.queued += 1;
                self.switches[j].queued_total += 1;
                self.active.insert(j);
                self.watchdog.record_progress(now);
            }
        }
        self.arrival_scratch = batch;
    }

    fn forward_phase(&mut self, now: Cycle, mut faults: Option<&mut FaultDirector>)
    where
        P: Clone,
    {
        // The port round-robin pointer advances once per round on every
        // switch (active or not), exactly as the exhaustive scan did.
        let start_port = (self.forward_rounds % ALL_PORTS.len() as u64) as usize;
        self.forward_rounds += 1;
        if self.active.is_empty() {
            return;
        }
        let n = self.switches.len();
        let rotation = (now as usize) % n.max(1);
        // Visit the active switches in the per-cycle rotation order
        // `rotation, rotation+1, …, n-1, 0, …, rotation-1` via the sparse
        // bitmap cursor: O(n/64 + |active|) instead of the O(n) dense
        // membership scan, which matters once machines grow past 16 nodes.
        // Forwarding only ever deactivates the switch being processed (never
        // a later one, and it activates none), so an explicit cursor over
        // `next_at_or_after` visits exactly the switches the dense rotation
        // scan would have, in the same order — the schedule stays
        // bit-identical.
        let mut pos = rotation;
        while let Some(i) = self.active.next_at_or_after(pos) {
            self.forward_switch(i, now, start_port, faults.as_deref_mut());
            pos = i + 1;
        }
        let mut pos = 0;
        while pos < rotation {
            match self.active.next_at_or_after(pos) {
                Some(i) if i < rotation => {
                    self.forward_switch(i, now, start_port, faults.as_deref_mut());
                    pos = i + 1;
                }
                _ => break,
            }
        }
    }

    fn forward_switch(
        &mut self,
        i: usize,
        now: Cycle,
        start_port: usize,
        mut faults: Option<&mut FaultDirector>,
    ) where
        P: Clone,
    {
        // A stalled (or blacked-out) switch forwards nothing while its fault
        // window is open; it stays on the worklist and resumes afterwards.
        if faults.as_deref().is_some_and(|f| f.switch_stalled(i)) {
            return;
        }
        // Congestion inputs (link state, downstream occupancy) are immutable
        // during the read-only planning pass, so the four-direction metric is
        // computed at most once per applied move instead of once per queued
        // packet; it must be refreshed after a move, which the subsequent
        // ports of this switch observe exactly as the exhaustive scan did.
        // Static routing never consults the metric, so it skips the
        // neighbour-gathering entirely.
        let adaptive = self.routing == RoutingPolicy::Adaptive;
        let mut congestion: Option<[usize; 4]> = None;
        for pk in 0..ALL_PORTS.len() {
            let p = (start_port + pk) % ALL_PORTS.len();
            if self.switches[i].ports[p].queued == 0 {
                continue;
            }
            let c = if adaptive {
                *congestion
                    .get_or_insert_with(|| Self::congestion_of(&self.switches, &self.torus, i, now))
            } else {
                [0usize; 4]
            };
            if let Some(decision) = self.plan_port_move(i, p, now, &c) {
                self.apply_move(i, p, decision, now, faults.as_deref_mut());
                congestion = None;
            }
        }
    }

    /// The adaptive-routing congestion metric for each outgoing direction of
    /// switch `i`: messages on the link, the link-busy flag, and the
    /// occupancy of the downstream input port.
    fn congestion_of(switches: &[Switch<P>], torus: &Torus, i: usize, now: Cycle) -> [usize; 4] {
        let sw = &switches[i];
        let mut congestion = [0usize; 4];
        for d in LINK_DIRECTIONS {
            let di = d.index();
            let j = torus.neighbor(sw.node, d).index();
            let opp = d.opposite().index();
            congestion[di] = sw.links[di].in_transit.len()
                + usize::from(!sw.links[di].is_free(now))
                + switches[j].ports[opp].occupancy();
        }
        congestion
    }

    /// Read-only pass: decide which (if any) packet of input port `p` of
    /// switch `i` can move this cycle, and where to. `congestion` is the
    /// per-direction congestion metric, computed once per switch visit (its
    /// inputs cannot change during planning).
    fn plan_port_move(
        &self,
        i: usize,
        p: usize,
        now: Cycle,
        congestion: &[usize; 4],
    ) -> Option<MoveDecision> {
        let sw = &self.switches[i];
        let port = &sw.ports[p];
        let nb = port.buffers.len();
        let incoming = ALL_PORTS[p];
        for bk in 0..nb {
            let b = (port.rr_next + bk) % nb;
            let Some(pkt) = port.buffers[b].queue.peek() else {
                continue;
            };
            // Local delivery. Under a split pool budget the ejecting packet
            // must additionally win an endpoint slot (it trades its switch
            // slot away); under a unified budget it keeps the slot it holds.
            if pkt.dst == sw.node {
                let q = self.layout.ejection_index(pkt.vnet);
                if !self.eject[i][q].is_full() && self.endpoint_can(i, pkt.vnet) {
                    return Some(MoveDecision {
                        buffer: b,
                        action: MoveAction::Eject { queue: q },
                    });
                }
                continue; // head blocked on ejection space; try other buffers
            }
            let cands = route_candidates(&self.torus, self.routing, sw.node, pkt.dst, congestion);
            let current_vc = self.layout.vc_of_buffer(b);
            let serialization = self.cfg.link_bandwidth.serialization_cycles(pkt.bytes());

            let try_hop = |dir: Direction, use_adaptive: bool| -> Option<MoveDecision> {
                let di = dir.index();
                if !sw.links[di].is_free(now) {
                    return None;
                }
                let crosses = self.torus.crosses_dateline(sw.node, dir);
                let j = self.torus.neighbor(sw.node, dir).index();
                let opp = dir.opposite().index();
                let tb = self.layout.next_buffer_index(
                    pkt.vnet,
                    current_vc,
                    incoming,
                    dir,
                    crosses,
                    use_adaptive,
                );
                if self.switches[j].ports[opp].buffers[tb].has_space() && self.pool_can(j, pkt.vnet)
                {
                    Some(MoveDecision {
                        buffer: b,
                        action: MoveAction::Forward {
                            dir,
                            target_buffer: tb,
                            serialization,
                        },
                    })
                } else {
                    None
                }
            };

            if cands.adaptive {
                // Duato's scheme: prefer the fully adaptive channel on any
                // productive direction (least congested first) and fall back
                // to the escape (dimension-order, dateline) channel.
                for &dir in &cands.directions {
                    if let Some(m) = try_hop(dir, true) {
                        return Some(m);
                    }
                }
                let dor = self.torus.dimension_order_direction(sw.node, pkt.dst);
                if let Some(m) = try_hop(dor, false) {
                    return Some(m);
                }
            } else {
                for &dir in &cands.directions {
                    if dir == Direction::Local {
                        break;
                    }
                    if let Some(m) = try_hop(dir, false) {
                        return Some(m);
                    }
                }
            }
        }
        None
    }

    /// Mutating pass: execute a planned move, consulting the fault director
    /// (if any) at the link-transmit and ejection hooks.
    fn apply_move(
        &mut self,
        i: usize,
        p: usize,
        decision: MoveDecision,
        now: Cycle,
        faults: Option<&mut FaultDirector>,
    ) where
        P: Clone,
    {
        match decision.action {
            MoveAction::Eject { queue } => {
                let pkt = self.switches[i].ports[p].buffers[decision.buffer]
                    .queue
                    .pop()
                    .expect("planned packet vanished");
                if faults.as_deref().is_some_and(|f| f.inbox_dropped(i)) {
                    // Dead network interface: the ejected message is lost
                    // before it reaches the endpoint. Its slot is freed from
                    // the switch pool (it never takes an endpoint slot).
                    self.pool_release(i, pkt.vnet);
                    self.in_flight = self.in_flight.saturating_sub(1);
                    self.watchdog.record_progress(now);
                } else {
                    if self.endpoint_pools.is_some() {
                        // Split budget: trade the switch slot for the
                        // endpoint slot the planning pass checked.
                        self.pool_release(i, pkt.vnet);
                        self.endpoint_acquire(i, pkt.vnet);
                    }
                    let latency = now.saturating_sub(pkt.injected_at);
                    self.ordering
                        .observe_delivery(pkt.src, pkt.dst, pkt.vnet, pkt.seq);
                    self.stats.record_delivery(pkt.vnet, latency);
                    self.eject[i][queue]
                        .push(pkt)
                        .unwrap_or_else(|_| panic!("ejection space was checked during planning"));
                    self.eject_pending[i] += 1;
                    self.eject_active.insert(i);
                    self.in_flight = self.in_flight.saturating_sub(1);
                    self.watchdog.record_progress(now);
                }
            }
            MoveAction::Forward {
                dir,
                target_buffer,
                serialization,
            } => {
                let mut pkt = self.switches[i].ports[p].buffers[decision.buffer]
                    .queue
                    .pop()
                    .expect("planned packet vanished");
                let node = self.switches[i].node;
                let j = self.torus.neighbor(node, dir).index();
                let opp = dir.opposite().index();
                // Fault injection at link transmit: at most one armed
                // message fault fires per transmit.
                let fired =
                    faults.and_then(|f| f.message_fault(now, i, dir.index(), pkt.vnet.index()));
                if matches!(fired, Some((FaultKind::Drop, _))) {
                    // The message vanishes on the link: free this node's
                    // slot and never touch the downstream side.
                    self.pool_release(i, pkt.vnet);
                    self.in_flight = self.in_flight.saturating_sub(1);
                    self.watchdog.record_progress(now);
                } else {
                    let delay = match fired {
                        Some((FaultKind::Delay, param)) => param,
                        _ => 0,
                    };
                    if matches!(fired, Some((FaultKind::Corrupt, _))) {
                        pkt.taint = PacketTaint::Corrupt;
                    }
                    let duplicate = matches!(fired, Some((FaultKind::Duplicate, _)));
                    let vnet = pkt.vnet;
                    let dup_pkt = duplicate.then(|| {
                        let mut d = pkt.clone();
                        d.taint = PacketTaint::Duplicate;
                        d
                    });
                    // The slot credit travels with the packet: the hop frees
                    // a slot at this node and takes the downstream one that
                    // the planning pass checked. A delay fault holds the link
                    // (and everything serialized behind it) for the extra
                    // cycles, so per-link arrivals stay in FIFO order.
                    self.pool_release(i, vnet);
                    self.pool_acquire(j, vnet);
                    let arrival = now + serialization + self.cfg.switch_latency + delay;
                    {
                        let link = &mut self.switches[i].links[dir.index()];
                        link.busy_until = now + serialization + delay;
                        link.util.add_busy(serialization);
                        link.in_transit.push_back(InTransit {
                            arrival,
                            target_buffer,
                            packet: pkt,
                        });
                    }
                    self.arrivals.schedule(arrival, i, dir.index());
                    self.switches[j].ports[opp].buffers[target_buffer].reserved += 1;
                    self.stats.hops.incr();
                    self.watchdog.record_progress(now);
                    if let Some(d) = dup_pkt {
                        // The spurious copy follows back-to-back on the same
                        // link and consumes real downstream resources — if
                        // the buffer and pool can cover a second packet; an
                        // exhausted target quietly absorbs the fault.
                        if self.switches[j].ports[opp].buffers[target_buffer].has_space()
                            && self.pool_can(j, vnet)
                        {
                            self.pool_acquire(j, vnet);
                            let dup_arrival = arrival + serialization;
                            {
                                let link = &mut self.switches[i].links[dir.index()];
                                link.busy_until = now + 2 * serialization;
                                link.util.add_busy(serialization);
                                link.in_transit.push_back(InTransit {
                                    arrival: dup_arrival,
                                    target_buffer,
                                    packet: d,
                                });
                            }
                            self.arrivals.schedule(dup_arrival, i, dir.index());
                            self.switches[j].ports[opp].buffers[target_buffer].reserved += 1;
                            self.in_flight += 1;
                        }
                    }
                }
            }
        }
        let sw = &mut self.switches[i];
        sw.ports[p].queued -= 1;
        sw.queued_total -= 1;
        if sw.queued_total == 0 {
            self.active.remove(i);
        }
        let port = &mut self.switches[i].ports[p];
        port.rr_next = (decision.buffer + 1) % port.buffers.len();
    }
}

impl<P> Network<P> {
    /// Checks the incremental worklist bookkeeping (per-port and per-switch
    /// queued counters, active-set membership, per-node ejection counts)
    /// against a full scan of the underlying queues. Test support; O(network).
    #[cfg(test)]
    fn assert_worklist_invariants(&self) {
        for (i, sw) in self.switches.iter().enumerate() {
            let mut total = 0;
            for port in &sw.ports {
                assert_eq!(port.queued, port.queued_scan(), "port counter at {i}");
                total += port.queued;
            }
            assert_eq!(sw.queued_total, total, "switch counter at {i}");
            assert_eq!(
                self.active.contains(i),
                total > 0,
                "active-set membership at {i}"
            );
        }
        for (i, queues) in self.eject.iter().enumerate() {
            let scan: usize = queues.iter().map(MsgQueue::len).sum();
            assert_eq!(self.eject_pending[i], scan, "ejection count at node {i}");
            assert_eq!(
                self.eject_active.contains(i),
                scan > 0,
                "eject-active membership at node {i}"
            );
        }
        self.assert_pool_invariants();
    }

    /// Checks the shared-pool slot accounting against a full scan: a node's
    /// held slots per class must equal the packets of that class queued in
    /// its input ports and ejection queues plus the in-flight link packets
    /// that reserved a slot at this node. Under a split budget the switch
    /// pool covers ports + in-transit reservations and the endpoint pool
    /// covers the ejection queues. No-op for unpooled networks.
    #[cfg(test)]
    fn assert_pool_invariants(&self) {
        let Some(pools) = &self.pools else { return };
        let n = self.switches.len();
        let mut switch_side = vec![[0usize; 4]; n];
        let mut eject_side = vec![[0usize; 4]; n];
        for (i, sw) in self.switches.iter().enumerate() {
            for port in &sw.ports {
                for buffer in &port.buffers {
                    for pkt in buffer.queue.iter() {
                        switch_side[i][pkt.vnet.index()] += 1;
                    }
                }
            }
            // In-flight packets hold their downstream slot from forwarding
            // time until delivery.
            for d in LINK_DIRECTIONS {
                let j = self.torus.neighbor(sw.node, d).index();
                for t in &sw.links[d.index()].in_transit {
                    switch_side[j][t.packet.vnet.index()] += 1;
                }
            }
        }
        for (i, queues) in self.eject.iter().enumerate() {
            for q in queues {
                for pkt in q.iter() {
                    eject_side[i][pkt.vnet.index()] += 1;
                }
            }
        }
        let expected_switch: Vec<[usize; 4]> = if self.endpoint_pools.is_some() {
            switch_side
        } else {
            // Unified budget: one pool covers both sides.
            switch_side
                .iter()
                .zip(&eject_side)
                .map(|(s, e)| std::array::from_fn(|v| s[v] + e[v]))
                .collect()
        };
        for (i, pool) in pools.iter().enumerate() {
            for (v, &count) in expected_switch[i].iter().enumerate() {
                assert_eq!(
                    pool.in_use(v),
                    count,
                    "pool slot count at node {i}, class {v}"
                );
            }
        }
        let full_scan = pools.iter().filter(|p| p.occupancy() == p.total()).count();
        assert_eq!(self.full_pools, full_scan, "full-pool counter");
        if let Some(endpoint) = &self.endpoint_pools {
            for (i, pool) in endpoint.iter().enumerate() {
                for (v, &count) in eject_side[i].iter().enumerate() {
                    assert_eq!(
                        pool.in_use(v),
                        count,
                        "endpoint pool slot count at node {i}, class {v}"
                    );
                }
            }
            let full_scan = endpoint
                .iter()
                .filter(|p| p.occupancy() == p.total())
                .count();
            assert_eq!(
                self.full_endpoint_pools, full_scan,
                "full-endpoint-pool counter"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specsim_base::{DetRng, LinkBandwidth};

    type Net = Network<u64>;

    /// Drains one batch from the calendar the way `deliver_phase` does.
    fn pop_batch(cal: &mut ArrivalCalendar, now: Cycle) -> Option<Vec<(u32, u8)>> {
        let mut out = Vec::new();
        cal.pop_ripe_into(now, &mut out).then_some(out)
    }

    #[test]
    fn calendar_drains_cycles_in_order_and_batches_in_schedule_order() {
        let mut cal = ArrivalCalendar::default();
        assert!(pop_batch(&mut cal, 0).is_none());
        cal.schedule(5, 1, 0);
        cal.schedule(3, 2, 1);
        cal.schedule(5, 3, 2);
        // Nothing ripe before cycle 3.
        assert!(pop_batch(&mut cal, 2).is_none());
        // Earliest cycle first; within a cycle, schedule order.
        assert_eq!(pop_batch(&mut cal, 10), Some(vec![(2, 1)]));
        assert_eq!(pop_batch(&mut cal, 10), Some(vec![(1, 0), (3, 2)]));
        assert!(pop_batch(&mut cal, 10).is_none());
        // Empty again: the cursor re-anchors and far-future cycles work.
        cal.schedule(11, 4, 3);
        assert!(pop_batch(&mut cal, 10).is_none());
        assert_eq!(pop_batch(&mut cal, 11), Some(vec![(4, 3)]));
    }

    #[test]
    fn calendar_overflow_beyond_the_wheel_horizon_is_preserved_in_order() {
        let mut cal = ArrivalCalendar::default();
        let far = MIN_WHEEL_BUCKETS as Cycle + 500;
        // Scheduled while `next` is 0, so `far` lands in the overflow map...
        cal.schedule(far, 9, 1);
        cal.schedule(2, 1, 0);
        // ...and an in-wheel entry for the same far cycle, scheduled later
        // (after the cursor advanced), must drain *after* the overflow one.
        assert_eq!(pop_batch(&mut cal, 2), Some(vec![(1, 0)]));
        cal.schedule(far, 7, 2);
        assert!(pop_batch(&mut cal, far - 1).is_none());
        assert_eq!(pop_batch(&mut cal, far), Some(vec![(9, 1), (7, 2)]));
        assert!(pop_batch(&mut cal, far + MIN_WHEEL_BUCKETS as Cycle).is_none());
    }

    #[test]
    fn calendar_clear_discards_everything_but_keeps_working() {
        let mut cal = ArrivalCalendar::default();
        cal.schedule(4, 1, 0);
        cal.schedule(MIN_WHEEL_BUCKETS as Cycle + 9, 2, 1);
        cal.clear();
        assert!(pop_batch(&mut cal, MIN_WHEEL_BUCKETS as Cycle * 2).is_none());
        cal.schedule(MIN_WHEEL_BUCKETS as Cycle * 2 + 3, 5, 3);
        assert_eq!(
            pop_batch(&mut cal, MIN_WHEEL_BUCKETS as Cycle * 2 + 3),
            Some(vec![(5, 3)])
        );
    }

    #[test]
    fn calendar_wheel_is_sized_from_the_horizon() {
        // The floor applies when the horizon fits the minimum wheel...
        assert_eq!(
            ArrivalCalendar::with_horizon(0).wheel.len(),
            MIN_WHEEL_BUCKETS
        );
        assert_eq!(
            ArrivalCalendar::with_horizon(1023).wheel.len(),
            MIN_WHEEL_BUCKETS
        );
        // ...and a longer horizon rounds up to the next power of two, so the
        // full common scheduling distance stays on the wheel.
        assert_eq!(ArrivalCalendar::with_horizon(1024).wheel.len(), 2048);
        assert_eq!(ArrivalCalendar::with_horizon(3000).wheel.len(), 4096);
        let cal = ArrivalCalendar::with_horizon(3000);
        assert!(cal.wheel.len().is_power_of_two());
    }

    #[test]
    fn calendar_overflow_heavy_schedule_drains_in_exact_order() {
        // Park far more entries in the overflow map than on the wheel —
        // every distinct due cycle beyond the horizon, interleaved with
        // near-term wheel entries — and require the global drain order to be
        // exactly (due cycle asc, schedule order within a cycle), overflow
        // entries strictly before wheel entries for the same cycle.
        let mut cal = ArrivalCalendar::default();
        let lap = MIN_WHEEL_BUCKETS as Cycle;
        let mut expected: BTreeMap<Cycle, Vec<(u32, u8)>> = BTreeMap::new();
        // 64 overflow cycles, several laps deep, three entries each.
        for k in 0..64u32 {
            let due = lap + 17 + 3 * k as Cycle * 37 % (5 * lap);
            for j in 0..3u8 {
                cal.schedule(due, k as usize, j as usize);
                expected.entry(due).or_default().push((k, j));
            }
        }
        // A handful of near entries that must drain first.
        for k in 0..8u32 {
            let due = 2 + k as Cycle * 5;
            cal.schedule(due, 100 + k as usize, 0);
            expected.entry(due).or_default().push((100 + k, 0));
        }
        // Same-cycle mix: an overflow entry scheduled first must come out
        // before a wheel entry scheduled for the same cycle later.
        let mixed = lap + 17; // already in overflow from the loop above
        let mut now = 0;
        let mut got: Vec<(Cycle, Vec<(u32, u8)>)> = Vec::new();
        while now < 8 * lap {
            now += 1;
            if now == mixed {
                // Close enough now to land on the wheel.
                cal.schedule(mixed, 999, 3);
                expected.entry(mixed).or_default().push((999, 3));
            }
            while let Some(batch) = pop_batch(&mut cal, now) {
                got.push((now, batch));
            }
        }
        let want: Vec<(Cycle, Vec<(u32, u8)>)> = expected.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn calendar_matches_a_btreemap_model_under_random_traffic() {
        // Drive the wheel and the old BTreeMap<Cycle, Vec> representation
        // with the same schedule/pop stream and require identical batches.
        let mut cal = ArrivalCalendar::default();
        let mut model: BTreeMap<Cycle, Vec<(u32, u8)>> = BTreeMap::new();
        let mut rng = DetRng::new(71);
        let mut now: Cycle = 0;
        for _ in 0..3_000 {
            now += 1 + rng.next_below(3);
            // Drain everything ripe, comparing batch-for-batch (the model
            // pops its earliest entry exactly like the old implementation).
            loop {
                let expected = match model.first_key_value() {
                    Some((&c, _)) if c <= now => model.remove(&c),
                    _ => None,
                };
                let got = pop_batch(&mut cal, now);
                assert_eq!(got, expected, "divergence at cycle {now}");
                if got.is_none() {
                    break;
                }
            }
            // Schedule a burst of arrivals, occasionally far enough out to
            // exercise the overflow map.
            for _ in 0..rng.next_below(4) {
                let horizon = if rng.next_below(10) == 0 {
                    MIN_WHEEL_BUCKETS as Cycle + rng.next_below(400)
                } else {
                    1 + rng.next_below(800)
                };
                let arrival = now + horizon;
                let sw = rng.next_below(16) as u32;
                let dir = rng.next_below(4) as u8;
                cal.schedule(arrival, sw as usize, dir as usize);
                model.entry(arrival).or_default().push((sw, dir));
            }
        }
    }

    fn drain_all_ejections(net: &mut Net) -> Vec<Packet<u64>> {
        let mut out = Vec::new();
        for i in 0..net.num_nodes() {
            while let Some(p) = net.eject_any(NodeId::from(i)) {
                out.push(p);
            }
        }
        out
    }

    /// Ticks the network (draining every ejection queue each cycle, as live
    /// endpoints would) until the fabric is empty or `max_cycles` elapse.
    /// Returns the final cycle and every packet delivered while draining.
    fn run_until_drained(
        net: &mut Net,
        start: Cycle,
        max_cycles: u64,
    ) -> (Cycle, Vec<Packet<u64>>) {
        let mut now = start;
        let mut delivered = drain_all_ejections(net);
        while net.in_flight() > 0 && now < start + max_cycles {
            now += 1;
            net.tick(now);
            delivered.extend(drain_all_ejections(net));
        }
        (now, delivered)
    }

    #[test]
    fn single_message_is_delivered_across_the_torus() {
        let mut net: Net = Network::new(NetConfig::conventional(16, LinkBandwidth::GB_3_2));
        net.inject(
            0,
            NodeId(0),
            NodeId(10),
            VirtualNetwork::Request,
            MessageSize::Control,
            7,
        )
        .unwrap();
        let (end, delivered) = run_until_drained(&mut net, 0, 100_000);
        assert!(net.in_flight() == 0, "message still in flight at {end}");
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].payload, 7);
        assert_eq!(delivered[0].dst, NodeId(10));
        // Latency must cover at least distance hops of serialization.
        let min = net.torus().distance(NodeId(0), NodeId(10)) as u64
            * LinkBandwidth::GB_3_2.serialization_cycles(8);
        assert!(net.stats().mean_latency() >= min as f64);
    }

    #[test]
    fn self_send_is_delivered_locally() {
        let mut net: Net = Network::new(NetConfig::conventional(16, LinkBandwidth::GB_3_2));
        net.inject(
            0,
            NodeId(5),
            NodeId(5),
            VirtualNetwork::Response,
            MessageSize::Data,
            1,
        )
        .unwrap();
        let (_, delivered) = run_until_drained(&mut net, 0, 1000);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].payload, 1);
        assert_eq!(delivered[0].src, NodeId(5));
        assert_eq!(delivered[0].dst, NodeId(5));
    }

    #[test]
    fn static_routing_preserves_point_to_point_order() {
        let mut net: Net = Network::new(NetConfig::full_buffering(
            16,
            LinkBandwidth::MB_400,
            RoutingPolicy::Static,
        ));
        let mut now = 0;
        let mut sent = 0u64;
        // Keep a stream of messages flowing from node 0 to node 10 while
        // other nodes add background traffic.
        let mut rng = DetRng::new(1);
        for _ in 0..400 {
            now += 1;
            if net.can_inject(NodeId(0), VirtualNetwork::ForwardedRequest) && sent < 200 {
                net.inject(
                    now,
                    NodeId(0),
                    NodeId(10),
                    VirtualNetwork::ForwardedRequest,
                    MessageSize::Control,
                    sent,
                )
                .unwrap();
                sent += 1;
            }
            let src = NodeId::from((rng.next_below(16)) as usize);
            let dst = NodeId::from((rng.next_below(16)) as usize);
            if src != dst && net.can_inject(src, VirtualNetwork::Response) {
                let _ = net.inject(
                    now,
                    src,
                    dst,
                    VirtualNetwork::Response,
                    MessageSize::Data,
                    0,
                );
            }
            net.tick(now);
            for i in 0..16 {
                while net.eject_any(NodeId::from(i)).is_some() {}
            }
        }
        let (now, _) = run_until_drained(&mut net, now, 200_000);
        assert_eq!(net.in_flight(), 0, "not drained by {now}");
        assert_eq!(net.ordering().total_reordered(), 0);
        assert!(net.ordering().total_delivered() > 200);
    }

    #[test]
    fn all_messages_are_delivered_under_heavy_random_traffic_with_vcs() {
        let mut cfg = NetConfig::conventional(16, LinkBandwidth::GB_3_2);
        cfg.routing = RoutingPolicy::Adaptive;
        let mut net: Net = Network::new(cfg);
        let mut rng = DetRng::new(99);
        let mut now = 0;
        let mut injected = 0u64;
        for _ in 0..2000 {
            now += 1;
            for _ in 0..4 {
                let src = NodeId::from(rng.next_below(16) as usize);
                let dst = NodeId::from(rng.next_below(16) as usize);
                let vnet = crate::packet::ALL_VIRTUAL_NETWORKS[rng.next_below(4) as usize];
                if net.can_inject(src, vnet) {
                    net.inject(now, src, dst, vnet, MessageSize::Control, injected)
                        .unwrap();
                    injected += 1;
                }
            }
            net.tick(now);
            // Endpoints drain their ejection queues every cycle.
            for i in 0..16 {
                while net.eject_any(NodeId::from(i)).is_some() {}
            }
        }
        let (now, _) = run_until_drained(&mut net, now, 200_000);
        assert_eq!(net.in_flight(), 0, "VC network wedged at {now}");
        assert!(!net.is_stalled(now));
        assert_eq!(net.stats().delivered.get(), injected);
        assert!(injected > 1000);
    }

    #[test]
    fn rectangular_torus_delivers_all_traffic_and_keeps_counters() {
        // An 8×4 rectangular machine under adaptive VC traffic: everything
        // must be delivered and the worklist bookkeeping must stay exact.
        let mut cfg = NetConfig::conventional(32, LinkBandwidth::GB_3_2);
        cfg.routing = RoutingPolicy::Adaptive;
        let mut net: Net = Network::new(cfg);
        assert_eq!(net.torus().dims(), (8, 4));
        let mut rng = DetRng::new(41);
        let mut now = 0;
        let mut injected = 0u64;
        for _ in 0..1500 {
            now += 1;
            for _ in 0..4 {
                let src = NodeId::from(rng.next_below(32) as usize);
                let dst = NodeId::from(rng.next_below(32) as usize);
                let vnet = crate::packet::ALL_VIRTUAL_NETWORKS[rng.next_below(4) as usize];
                if net.can_inject(src, vnet) {
                    net.inject(now, src, dst, vnet, MessageSize::Control, injected)
                        .unwrap();
                    injected += 1;
                }
            }
            net.tick(now);
            for i in 0..32 {
                while net.eject_any(NodeId::from(i)).is_some() {}
            }
            net.assert_worklist_invariants();
        }
        let (now, _) = run_until_drained(&mut net, now, 200_000);
        assert_eq!(net.in_flight(), 0, "8x4 network wedged at {now}");
        assert_eq!(net.stats().delivered.get(), injected);
        assert!(injected > 1000);
    }

    #[test]
    fn explicit_torus_dims_override_the_squarest_derivation() {
        let mut cfg = NetConfig::conventional(32, LinkBandwidth::GB_3_2);
        cfg.torus_dims = Some((16, 2));
        let net: Net = Network::new(cfg);
        assert_eq!(net.torus().dims(), (16, 2));
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn mismatched_torus_dims_panic() {
        let mut cfg = NetConfig::conventional(32, LinkBandwidth::GB_3_2);
        cfg.torus_dims = Some((4, 4));
        let _ = Network::<u64>::new(cfg);
    }

    #[test]
    fn worst_case_buffering_never_rejects_injection() {
        let mut net: Net = Network::new(NetConfig::full_buffering(
            16,
            LinkBandwidth::MB_400,
            RoutingPolicy::Adaptive,
        ));
        let mut rng = DetRng::new(5);
        for now in 1..200u64 {
            for _ in 0..16 {
                let src = NodeId::from(rng.next_below(16) as usize);
                let dst = NodeId::from(rng.next_below(16) as usize);
                net.inject(now, src, dst, VirtualNetwork::Request, MessageSize::Data, 0)
                    .unwrap();
            }
            net.tick(now);
        }
        assert_eq!(net.stats().injection_rejects.get(), 0);
    }

    #[test]
    fn undrained_endpoints_back_pressure_and_stall_the_fabric() {
        // Tiny shared buffers and nobody draining ejection queues: the fabric
        // must eventually wedge (endpoint-induced stall), which the watchdog
        // reports. This is the failure mode that, in the full system, the
        // coherence-transaction timeout converts into a recovery.
        let mut net: Net = Network::new(NetConfig::speculative(16, LinkBandwidth::GB_3_2, 2));
        net.set_stall_threshold(2_000);
        let mut rng = DetRng::new(17);
        let mut now = 0;
        for _ in 0..20_000 {
            now += 1;
            let src = NodeId::from(rng.next_below(16) as usize);
            let dst = NodeId::from(rng.next_below(16) as usize);
            if src != dst {
                let _ = net.inject(
                    now,
                    src,
                    dst,
                    VirtualNetwork::Request,
                    MessageSize::Control,
                    0,
                );
            }
            net.tick(now);
            if net.is_stalled(now) {
                break;
            }
        }
        assert!(
            net.is_stalled(now),
            "expected a stall with undrained endpoints"
        );
        assert!(net.in_flight() > 0);
        // Recovery drains everything and clears the stall.
        let dropped = net.drain(now);
        assert!(dropped > 0);
        assert_eq!(net.in_flight(), 0);
        assert!(!net.is_stalled(now + 1));
    }

    #[test]
    fn worklist_counters_stay_consistent_under_traffic() {
        let mut cfg = NetConfig::conventional(16, LinkBandwidth::GB_3_2);
        cfg.routing = RoutingPolicy::Adaptive;
        let mut net: Net = Network::new(cfg);
        let mut rng = DetRng::new(23);
        let mut now = 0;
        for step in 0..600u64 {
            now += 1;
            let src = NodeId::from(rng.next_below(16) as usize);
            let dst = NodeId::from(rng.next_below(16) as usize);
            if src != dst && net.can_inject(src, VirtualNetwork::Request) {
                net.inject(now, src, dst, VirtualNetwork::Request, MessageSize::Data, 0)
                    .unwrap();
            }
            net.tick(now);
            // Drain endpoints only intermittently so ejection queues back up.
            if step % 7 == 0 {
                for i in 0..16 {
                    while net.eject_any(NodeId::from(i)).is_some() {}
                }
            }
            net.assert_worklist_invariants();
        }
        // Recovery drain must reset every counter and the calendar.
        net.drain(now);
        net.assert_worklist_invariants();
        assert_eq!(net.in_flight(), 0);
        for i in 0..16 {
            assert!(!net.has_ejectable(NodeId::from(i)));
        }
        // The network still works after a drain.
        net.inject(
            now,
            NodeId(0),
            NodeId(9),
            VirtualNetwork::Response,
            MessageSize::Control,
            5,
        )
        .unwrap();
        let (_, delivered) = run_until_drained(&mut net, now, 10_000);
        assert_eq!(delivered.len(), 1);
        net.assert_worklist_invariants();
    }

    #[test]
    fn stall_threshold_comes_from_the_config() {
        let mut cfg = NetConfig::speculative(16, LinkBandwidth::GB_3_2, 2);
        cfg.stall_threshold = 500;
        let mut net: Net = Network::new(cfg);
        net.inject(
            0,
            NodeId(0),
            NodeId(3),
            VirtualNetwork::Request,
            MessageSize::Control,
            0,
        )
        .unwrap();
        // Nothing moves (no ticks): the watchdog trips after the configured
        // threshold rather than the 10_000-cycle default.
        assert!(!net.is_stalled(499));
        assert!(net.is_stalled(500));
    }

    #[test]
    fn routing_policy_can_be_changed_at_runtime() {
        let mut net: Net = Network::new(NetConfig::speculative(16, LinkBandwidth::MB_400, 16));
        assert_eq!(net.routing(), RoutingPolicy::Adaptive);
        net.set_routing(RoutingPolicy::Static);
        assert_eq!(net.routing(), RoutingPolicy::Static);
    }

    #[test]
    fn shared_buffer_injection_back_pressure_reports_rejects() {
        let mut net: Net = Network::new(NetConfig::speculative(4, LinkBandwidth::MB_400, 1));
        // Saturate node 0's injection queue (capacity 1) without ticking.
        assert!(net
            .inject(
                0,
                NodeId(0),
                NodeId(3),
                VirtualNetwork::Request,
                MessageSize::Data,
                0
            )
            .is_ok());
        assert!(!net.can_inject(NodeId(0), VirtualNetwork::Request));
        let err = net.inject(
            0,
            NodeId(0),
            NodeId(3),
            VirtualNetwork::Request,
            MessageSize::Data,
            42,
        );
        assert_eq!(err, Err(InjectError(42)));
        assert_eq!(net.stats().injection_rejects.get(), 1);
    }

    #[test]
    fn hop_count_matches_distance_for_a_single_message() {
        let mut net: Net = Network::new(NetConfig::conventional(16, LinkBandwidth::GB_3_2));
        net.inject(
            0,
            NodeId(0),
            NodeId(15),
            VirtualNetwork::FinalAck,
            MessageSize::Control,
            0,
        )
        .unwrap();
        run_until_drained(&mut net, 0, 100_000);
        assert_eq!(net.in_flight(), 0);
        assert_eq!(
            net.stats().hops.get(),
            net.torus().distance(NodeId(0), NodeId(15)) as u64
        );
    }

    #[test]
    fn shared_pool_network_delivers_traffic_with_exact_slot_accounting() {
        // Random all-class traffic on a pooled network: everything is
        // delivered and the per-node slot accounting (checked against a full
        // scan every cycle, in-flight link reservations included) stays
        // exact.
        let mut net: Net = Network::new(NetConfig::shared_pool(16, LinkBandwidth::GB_3_2, 24));
        assert!(net.is_pooled());
        let mut rng = DetRng::new(61);
        let mut now = 0;
        let mut injected = 0u64;
        for _ in 0..1500 {
            now += 1;
            for _ in 0..3 {
                let src = NodeId::from(rng.next_below(16) as usize);
                let dst = NodeId::from(rng.next_below(16) as usize);
                let vnet = crate::packet::ALL_VIRTUAL_NETWORKS[rng.next_below(4) as usize];
                if net.can_inject(src, vnet) {
                    net.inject(now, src, dst, vnet, MessageSize::Control, injected)
                        .unwrap();
                    injected += 1;
                }
            }
            net.tick(now);
            for i in 0..16 {
                while net.eject_any(NodeId::from(i)).is_some() {}
            }
            net.assert_worklist_invariants();
        }
        let (now, _) = run_until_drained(&mut net, now, 200_000);
        assert_eq!(net.in_flight(), 0, "pooled network wedged at {now}");
        assert_eq!(net.stats().delivered.get(), injected);
        assert!(injected > 500);
        assert!(net.pool_occupancy_snapshot().iter().all(|&o| o == 0));
        net.assert_worklist_invariants();
    }

    #[test]
    fn pool_back_pressure_rejects_injection_when_slots_run_out() {
        // A 4-slot pool: the node's injection path is cut off by pool
        // exhaustion even though the (unbounded) injection buffer has room.
        let mut net: Net = Network::new(NetConfig::shared_pool(16, LinkBandwidth::MB_400, 4));
        for k in 0..4 {
            assert!(net
                .inject(
                    0,
                    NodeId(0),
                    NodeId(9),
                    VirtualNetwork::Request,
                    MessageSize::Data,
                    k,
                )
                .is_ok());
        }
        assert!(!net.can_inject(NodeId(0), VirtualNetwork::Request));
        assert!(
            !net.can_inject(NodeId(0), VirtualNetwork::Response),
            "every class shares the exhausted pool"
        );
        let err = net.inject(
            0,
            NodeId(0),
            NodeId(9),
            VirtualNetwork::Response,
            MessageSize::Data,
            99,
        );
        assert_eq!(err, Err(InjectError(99)));
        assert_eq!(net.stats().injection_rejects.get(), 1);
        // Other nodes' pools are unaffected.
        assert!(net.can_inject(NodeId(1), VirtualNetwork::Request));
        net.assert_worklist_invariants();
    }

    #[test]
    fn undrained_endpoints_deadlock_an_undersized_pool_and_drain_recovers() {
        // The tentpole failure mode: nobody drains ejection queues, delivered
        // packets pin pool slots, upstream hops back up across nodes and the
        // fabric wedges — the buffer-dependency deadlock of Figures 2–3.
        let mut net: Net = Network::new(NetConfig::shared_pool(16, LinkBandwidth::GB_3_2, 4));
        net.set_stall_threshold(2_000);
        let mut rng = DetRng::new(29);
        let mut now = 0;
        for _ in 0..30_000 {
            now += 1;
            let src = NodeId::from(rng.next_below(16) as usize);
            let dst = NodeId::from(rng.next_below(16) as usize);
            if src != dst {
                let _ = net.inject(
                    now,
                    src,
                    dst,
                    VirtualNetwork::Request,
                    MessageSize::Control,
                    0,
                );
            }
            net.tick(now);
            if net.is_stalled(now) {
                break;
            }
        }
        assert!(net.is_stalled(now), "undersized pool should wedge");
        assert!(net.in_flight() > 0);
        // Recovery drain frees every slot; conservative re-execution reserves
        // one slot per class and the network works again.
        let dropped = net.drain(now);
        assert!(dropped > 0);
        assert!(net.pool_occupancy_snapshot().iter().all(|&o| o == 0));
        assert!(net.set_pool_reservation(1));
        assert_eq!(net.pool_reservation(), Some(1));
        net.inject(
            now,
            NodeId(0),
            NodeId(5),
            VirtualNetwork::Response,
            MessageSize::Control,
            7,
        )
        .unwrap();
        let (_, delivered) = run_until_drained(&mut net, now, 100_000);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].payload, 7);
        assert!(net.set_pool_reservation(0), "reservation can be lifted");
        net.assert_worklist_invariants();
    }

    #[test]
    fn unpooled_networks_refuse_pool_reservations() {
        let mut net: Net = Network::new(NetConfig::conventional(16, LinkBandwidth::GB_3_2));
        assert!(!net.is_pooled());
        assert!(!net.set_pool_reservation(2));
        assert_eq!(net.pool_reservation(), None);
        assert!(net.pool_occupancy_snapshot().is_empty());
    }

    use specsim_base::{FaultEvent, FaultPlan, FaultSite};

    /// A director with one `kind` event armed on every outgoing link of
    /// `node` (so the test does not depend on the routing decision).
    fn link_faults(at: Cycle, node: usize, kind: FaultKind, param: u64) -> FaultDirector {
        let events = (0..4)
            .map(|dir| FaultEvent {
                at,
                site: FaultSite::Link {
                    node,
                    dir,
                    vnet: None,
                },
                kind,
                param,
            })
            .collect();
        FaultDirector::new(FaultPlan { events })
    }

    fn window_fault(at: Cycle, site: FaultSite, kind: FaultKind, param: u64) -> FaultDirector {
        FaultDirector::new(FaultPlan::single(FaultEvent {
            at,
            site,
            kind,
            param,
        }))
    }

    /// Like [`run_until_drained`] but ticking through the fault director.
    fn run_faulted_until_drained(
        net: &mut Net,
        faults: &mut FaultDirector,
        start: Cycle,
        max_cycles: u64,
    ) -> (Cycle, Vec<Packet<u64>>) {
        let mut now = start;
        let mut delivered = drain_all_ejections(net);
        while net.in_flight() > 0 && now < start + max_cycles {
            now += 1;
            net.tick_faulted(now, Some(faults));
            net.assert_worklist_invariants();
            delivered.extend(drain_all_ejections(net));
        }
        (now, delivered)
    }

    fn inject_one(net: &mut Net, now: Cycle, src: usize, dst: usize, payload: u64) {
        net.inject(
            now,
            NodeId::from(src),
            NodeId::from(dst),
            VirtualNetwork::Request,
            MessageSize::Control,
            payload,
        )
        .unwrap();
    }

    #[test]
    fn tick_faulted_without_a_director_matches_tick() {
        // `tick_faulted(now, None)` must be a strict no-op relative to
        // `tick(now)`: same schedule, same deliveries, same stats.
        let cfg = NetConfig::shared_pool(16, LinkBandwidth::GB_3_2, 24);
        let mut a: Net = Network::new(cfg.clone());
        let mut b: Net = Network::new(cfg);
        let mut rng_a = DetRng::new(77);
        let mut rng_b = DetRng::new(77);
        let mut got_a = Vec::new();
        let mut got_b = Vec::new();
        for now in 1..800u64 {
            for (net, rng) in [(&mut a, &mut rng_a), (&mut b, &mut rng_b)] {
                let src = NodeId::from(rng.next_below(16) as usize);
                let dst = NodeId::from(rng.next_below(16) as usize);
                if net.can_inject(src, VirtualNetwork::Response) {
                    let _ = net.inject(
                        now,
                        src,
                        dst,
                        VirtualNetwork::Response,
                        MessageSize::Data,
                        now,
                    );
                }
            }
            a.tick(now);
            b.tick_faulted(now, None);
            got_a.extend(
                drain_all_ejections(&mut a)
                    .into_iter()
                    .map(|p| (p.src, p.seq)),
            );
            got_b.extend(
                drain_all_ejections(&mut b)
                    .into_iter()
                    .map(|p| (p.src, p.seq)),
            );
        }
        assert_eq!(got_a, got_b);
        assert_eq!(a.in_flight(), b.in_flight());
        assert_eq!(a.stats().delivered.get(), b.stats().delivered.get());
    }

    #[test]
    fn drop_fault_loses_exactly_one_message() {
        let mut net: Net = Network::new(NetConfig::shared_pool(16, LinkBandwidth::GB_3_2, 24));
        let mut faults = link_faults(0, 0, FaultKind::Drop, 0);
        inject_one(&mut net, 0, 0, 1, 7);
        let (_, delivered) = run_faulted_until_drained(&mut net, &mut faults, 0, 10_000);
        assert!(delivered.is_empty(), "dropped message must not arrive");
        assert_eq!(net.in_flight(), 0, "drop releases the slot and the count");
        assert_eq!(faults.fires(), 1);
        assert!(net.pool_occupancy_snapshot().iter().all(|&o| o == 0));
        // A later message on the same link sails through (one-shot fault).
        inject_one(&mut net, 100, 0, 1, 8);
        let (_, delivered) = run_faulted_until_drained(&mut net, &mut faults, 100, 10_000);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].payload, 8);
        assert_eq!(delivered[0].taint, PacketTaint::Clean);
    }

    #[test]
    fn corrupt_fault_taints_the_delivered_packet() {
        let mut net: Net = Network::new(NetConfig::conventional(16, LinkBandwidth::GB_3_2));
        let mut faults = link_faults(0, 0, FaultKind::Corrupt, 0);
        inject_one(&mut net, 0, 0, 1, 7);
        let (_, delivered) = run_faulted_until_drained(&mut net, &mut faults, 0, 10_000);
        assert_eq!(delivered.len(), 1, "corruption does not lose the message");
        assert_eq!(delivered[0].taint, PacketTaint::Corrupt);
        assert!(delivered[0].taint.is_detectable());
        assert_eq!(faults.fires(), 1);
    }

    #[test]
    fn duplicate_fault_delivers_one_clean_and_one_tainted_copy() {
        let mut net: Net = Network::new(NetConfig::shared_pool(16, LinkBandwidth::GB_3_2, 24));
        let mut faults = link_faults(0, 0, FaultKind::Duplicate, 0);
        inject_one(&mut net, 0, 0, 1, 7);
        let (_, delivered) = run_faulted_until_drained(&mut net, &mut faults, 0, 10_000);
        assert_eq!(delivered.len(), 2);
        let clean: Vec<_> = delivered
            .iter()
            .filter(|p| p.taint == PacketTaint::Clean)
            .collect();
        let dup: Vec<_> = delivered
            .iter()
            .filter(|p| p.taint == PacketTaint::Duplicate)
            .collect();
        assert_eq!((clean.len(), dup.len()), (1, 1));
        assert_eq!(
            clean[0].seq, dup[0].seq,
            "the copy keeps the sequence number"
        );
        assert_eq!(dup[0].payload, 7);
        // An equal (duplicated) sequence number is not an ordering inversion.
        assert_eq!(net.ordering().total_reordered(), 0);
        assert_eq!(net.in_flight(), 0);
        assert!(net.pool_occupancy_snapshot().iter().all(|&o| o == 0));
    }

    #[test]
    fn delay_fault_postpones_delivery_by_its_parameter() {
        let mk = || -> Net { Network::new(NetConfig::conventional(16, LinkBandwidth::GB_3_2)) };
        let mut clean_net = mk();
        inject_one(&mut clean_net, 0, 0, 1, 7);
        let (clean_end, d) = run_until_drained(&mut clean_net, 0, 10_000);
        assert_eq!(d.len(), 1);
        let mut net = mk();
        let mut faults = link_faults(0, 0, FaultKind::Delay, 700);
        inject_one(&mut net, 0, 0, 1, 7);
        let (end, delivered) = run_faulted_until_drained(&mut net, &mut faults, 0, 20_000);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].taint, PacketTaint::Clean);
        assert!(
            end >= clean_end + 700,
            "delayed delivery at {end}, clean at {clean_end}"
        );
    }

    #[test]
    fn switch_stall_window_pauses_forwarding_then_releases() {
        let mut net: Net = Network::new(NetConfig::conventional(16, LinkBandwidth::GB_3_2));
        let mut faults = window_fault(
            1,
            FaultSite::Switch { node: 0 },
            FaultKind::SwitchStall,
            600,
        );
        inject_one(&mut net, 0, 0, 1, 7);
        let (end, delivered) = run_faulted_until_drained(&mut net, &mut faults, 0, 20_000);
        assert_eq!(delivered.len(), 1, "stall is temporary — no loss");
        assert!(end >= 601, "nothing forwarded before the window closed");
        assert_eq!(faults.fires(), 1);
    }

    #[test]
    fn switch_blackout_discards_arrivals_at_the_dead_switch() {
        let mut net: Net = Network::new(NetConfig::shared_pool(16, LinkBandwidth::GB_3_2, 24));
        let mut faults = window_fault(
            1,
            FaultSite::Switch { node: 1 },
            FaultKind::SwitchBlackout,
            50_000,
        );
        inject_one(&mut net, 0, 0, 1, 7);
        let (_, delivered) = run_faulted_until_drained(&mut net, &mut faults, 0, 60_000);
        assert!(
            delivered.is_empty(),
            "arrival at a blacked-out switch is lost"
        );
        assert_eq!(net.in_flight(), 0);
        assert!(net.pool_occupancy_snapshot().iter().all(|&o| o == 0));
    }

    #[test]
    fn inbox_drop_window_discards_ejections() {
        let mut net: Net = Network::new(NetConfig::shared_pool(16, LinkBandwidth::GB_3_2, 24));
        let mut faults = window_fault(
            1,
            FaultSite::Inbox { node: 1 },
            FaultKind::InboxDrop,
            50_000,
        );
        inject_one(&mut net, 0, 0, 1, 7);
        let (_, delivered) = run_faulted_until_drained(&mut net, &mut faults, 0, 60_000);
        assert!(delivered.is_empty(), "inbox-dropped message is lost");
        assert_eq!(net.in_flight(), 0);
        assert!(net.pool_occupancy_snapshot().iter().all(|&o| o == 0));
        // After the window a fresh message is delivered normally.
        let mut faults2 = FaultDirector::new(FaultPlan::none());
        inject_one(&mut net, 60_001, 0, 1, 9);
        let (_, delivered) = run_faulted_until_drained(&mut net, &mut faults2, 60_001, 10_000);
        assert_eq!(delivered.len(), 1);
    }

    #[test]
    fn split_pool_network_delivers_with_exact_accounting() {
        // The endpoint/switch split budget under random all-class traffic:
        // everything is delivered and both sides' slot accounting (checked
        // against full scans every cycle) stays exact.
        let mut net: Net = Network::new(NetConfig::shared_pool_split(
            16,
            LinkBandwidth::GB_3_2,
            18,
            6,
        ));
        assert!(net.is_pooled());
        assert!(net.is_pool_split());
        let mut rng = DetRng::new(61);
        let mut now = 0;
        let mut injected = 0u64;
        for _ in 0..1500 {
            now += 1;
            for _ in 0..3 {
                let src = NodeId::from(rng.next_below(16) as usize);
                let dst = NodeId::from(rng.next_below(16) as usize);
                let vnet = crate::packet::ALL_VIRTUAL_NETWORKS[rng.next_below(4) as usize];
                if net.can_inject(src, vnet) {
                    net.inject(now, src, dst, vnet, MessageSize::Control, injected)
                        .unwrap();
                    injected += 1;
                }
            }
            net.tick(now);
            for i in 0..16 {
                while net.eject_any(NodeId::from(i)).is_some() {}
            }
            net.assert_worklist_invariants();
        }
        let (now, _) = run_until_drained(&mut net, now, 200_000);
        assert_eq!(net.in_flight(), 0, "split-pool network wedged at {now}");
        assert_eq!(net.stats().delivered.get(), injected);
        assert!(injected > 500);
        assert!(net.pool_occupancy_snapshot().iter().all(|&o| o == 0));
        assert!(net
            .endpoint_pool_occupancy_snapshot()
            .iter()
            .all(|&o| o == 0));
        net.assert_worklist_invariants();
    }

    #[test]
    fn split_pool_endpoint_budget_gates_ejection_but_not_the_fabric() {
        // One endpoint slot at every node: with nobody draining, at most one
        // delivered message can hold node 1's endpoint budget; the others
        // wait *in the fabric* (their switch-side slots intact) instead of
        // overrunning the ejection queue. Draining releases the endpoint
        // slot and the next message comes through.
        let mut net: Net = Network::new(NetConfig::shared_pool_split(
            16,
            LinkBandwidth::MB_400,
            12,
            1,
        ));
        inject_one(&mut net, 0, 0, 1, 10);
        inject_one(&mut net, 0, 2, 1, 11);
        inject_one(&mut net, 0, 5, 1, 12);
        let mut now = 0;
        for _ in 0..5_000 {
            now += 1;
            net.tick(now);
            net.assert_worklist_invariants();
        }
        assert!(net.has_ejectable(NodeId(1)));
        assert!(net.has_exhausted_pool(), "endpoint budget is pinned");
        let mut got = Vec::new();
        for _ in 0..3 {
            let p = net.eject_any(NodeId(1));
            assert!(p.is_some(), "one message per endpoint slot");
            got.push(p.unwrap().payload);
            assert!(net.eject_any(NodeId(1)).is_none(), "budget gates the rest");
            for _ in 0..5_000 {
                now += 1;
                net.tick(now);
                net.assert_worklist_invariants();
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![10, 11, 12]);
        assert_eq!(net.in_flight(), 0);
        assert!(net
            .endpoint_pool_occupancy_snapshot()
            .iter()
            .all(|&o| o == 0));
    }

    #[test]
    fn mean_link_utilization_is_nonzero_under_traffic_and_bounded() {
        let mut net: Net = Network::new(NetConfig::conventional(16, LinkBandwidth::MB_400));
        let mut rng = DetRng::new(2);
        let mut now = 0;
        for _ in 0..500 {
            now += 1;
            let src = NodeId::from(rng.next_below(16) as usize);
            let dst = NodeId::from(rng.next_below(16) as usize);
            if src != dst && net.can_inject(src, VirtualNetwork::Response) {
                let _ = net.inject(
                    now,
                    src,
                    dst,
                    VirtualNetwork::Response,
                    MessageSize::Data,
                    0,
                );
            }
            net.tick(now);
            for i in 0..16 {
                while net.eject_any(NodeId::from(i)).is_some() {}
            }
        }
        let u = net.mean_link_utilization(now);
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }
}
