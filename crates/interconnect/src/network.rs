//! The assembled torus network: injection, cycle-by-cycle switching,
//! delivery, ordering accounting and recovery draining.
//!
//! # Active-set kernel
//!
//! The per-cycle work is driven by worklists instead of exhaustive scans:
//!
//! * **Forwarding** visits only switches on an [`ActiveSet`] worklist. A
//!   switch is on the worklist iff it holds at least one queued packet
//!   (injection, link delivery and forwarding maintain per-port and
//!   per-switch queue counters incrementally). Fairness is unchanged: the
//!   per-cycle rotation and the per-switch/per-port round-robin pointers
//!   advance exactly as in the exhaustive scan, so the packet schedule — and
//!   therefore every metric — is bit-identical.
//! * **Link delivery** pops ripe arrivals from a due-cycle calendar
//!   (`ArrivalCalendar`, a ring-buffer timing wheel whose buckets and batch
//!   scratch space are reused, so steady-state delivery allocates nothing)
//!   instead of polling every link every cycle. Within one link arrivals are
//!   FIFO with non-decreasing due cycles, and arrivals on different links
//!   land in different buffers, so delivery state is independent of the
//!   order the calendar drains a cycle's batch in.
//!
//! # Struct-of-arrays layout
//!
//! All per-switch state lives in one flat `SwitchSlab` (contiguous
//! per-port queue/credit/occupancy rows, see [`crate::switch`]) and packet
//! payloads live in a [`PacketArena`]; queues and link pipelines move dense
//! `u32` packet ids.
//! The forward kernel therefore walks cache-friendly rows instead of
//! chasing per-switch allocations, and a packet is copied zero times
//! between injection and ejection.
//!
//! # Parallel forwarding
//!
//! When [`Network::tick_with_pool`] (or the faulted variant) is handed a
//! [`WorkerPool`] with more than one thread, the forward phase of a
//! sufficiently busy, fault-free, unpooled cycle fans the active switches
//! out over the pool. Correctness rests on a dependency DAG: two *active*
//! neighbouring switches read and write overlapping slab rows, so they are
//! ordered by their serial visit positions; non-adjacent switches touch
//! disjoint rows (a hop writes only the sending switch, plus the credit
//! column of the one downstream port that faces it). Workers execute the
//! DAG as a wavefront; schedule-order effects (ordering tracker, stats,
//! arrival calendar, worklist removals) are staged per switch and merged in
//! exact serial visit order afterwards, so the schedule — and every golden
//! digest — is byte-identical to the serial path.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering as AtomicOrdering};

use specsim_base::{
    ActiveSet, Cycle, CycleDelta, FaultDirector, FaultKind, MessageSize, MsgQueue, NodeId,
    RoutingPolicy, UtilizationTracker, WorkerPool,
};

use crate::config::{BufferLayout, NetConfig};
use crate::deadlock::ProgressWatchdog;
use crate::ordering::OrderingTracker;
use crate::packet::{Packet, PacketArena, PacketTaint, VirtualNetwork};
use crate::pool::SlotPool;
use crate::routing::route_candidates;
use crate::stats::NetStats;
use crate::switch::{InTransit, SwitchSlab, UNBOUNDED};
use crate::topology::{Direction, Torus, LINK_DIRECTIONS};

/// Ports of a switch in index order (the four link directions plus Local).
const ALL_PORTS: [Direction; 5] = [
    Direction::East,
    Direction::West,
    Direction::North,
    Direction::South,
    Direction::Local,
];

/// Fewest active switches for which the parallel forward path is engaged;
/// below this the DAG build costs more than it saves and the serial cursor
/// walk (byte-identical by construction) runs instead.
const PARALLEL_FORWARD_MIN_ACTIVE: usize = 8;

/// Error returned by [`Network::inject`] when the source injection queue is
/// full; carries the payload back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectError<P>(pub P);

/// A planned packet movement inside one switch, produced by the read-only
/// planning pass and executed by the mutating pass.
#[derive(Debug, Clone, Copy)]
struct MoveDecision {
    buffer: usize,
    action: MoveAction,
}

#[derive(Debug, Clone, Copy)]
enum MoveAction {
    Eject {
        queue: usize,
    },
    Forward {
        dir: Direction,
        /// Global slab buffer-slot index at the downstream switch.
        target_slot: usize,
        serialization: CycleDelta,
    },
}

/// Minimum number of buckets in an [`ArrivalCalendar`]'s timing wheel
/// (always a power of two). Each calendar is sized at construction from the network's
/// own scheduling horizon (data-message serialization plus switch pipeline
/// latency — see [`ArrivalCalendar::with_horizon`]) so slow links never park
/// every steady-state arrival in the overflow map; this constant is the
/// floor. Rarer horizons (fault-injected delays) still spill into overflow.
const MIN_WHEEL_BUCKETS: usize = 1024;

/// Due-cycle index over every in-transit link arrival: the entries for cycle
/// `c` list the `(switch, link direction)` pairs whose front in-transit
/// entry arrives at `c`. `deliver_phase` pops only ripe batches instead of
/// polling all `4 × num_nodes` links every cycle.
///
/// The index is a **ring-buffer timing wheel**: cycle `c` lives in bucket
/// `c % buckets`, and buckets are drained in place
/// ([`Vec::drain`] keeps their allocation), so steady-state scheduling
/// allocates nothing — unlike the `BTreeMap<Cycle, Vec>` predecessor, which
/// allocated one fresh `Vec` per distinct due cycle. Arrivals beyond the
/// wheel horizon (possible only with links slower than the Table 2 range)
/// spill into a `BTreeMap` overflow. `next` is the lowest cycle not yet
/// drained; because `next` is monotone and an entry overflows only when its
/// cycle is at least one full wheel lap past `next`, all overflow entries for a
/// cycle were scheduled before all wheel entries for it — draining
/// overflow-first preserves exact schedule order.
#[derive(Debug, Clone)]
struct ArrivalCalendar {
    wheel: Vec<Vec<(u32, u8)>>,
    overflow: BTreeMap<Cycle, Vec<(u32, u8)>>,
    /// Lowest cycle not yet drained. Arrivals are always scheduled at or
    /// after it (`pop_ripe_into` runs first in every tick and re-anchors it
    /// to `now + 1` when the calendar is empty).
    next: Cycle,
    /// Entries currently indexed (wheel + overflow).
    pending: usize,
}

impl Default for ArrivalCalendar {
    fn default() -> Self {
        Self::with_horizon(0)
    }
}

impl ArrivalCalendar {
    /// Builds a calendar whose wheel covers at least `horizon` cycles of
    /// look-ahead: the bucket count is `horizon + 1` rounded up to a power
    /// of two, floored at [`MIN_WHEEL_BUCKETS`]. Callers pass the longest
    /// *common* scheduling distance (serialization of the largest message
    /// plus switch latency); anything rarer overflows into the map.
    fn with_horizon(horizon: Cycle) -> Self {
        let buckets = (horizon as usize + 1)
            .next_power_of_two()
            .max(MIN_WHEEL_BUCKETS);
        Self {
            wheel: vec![Vec::new(); buckets],
            overflow: BTreeMap::new(),
            next: 0,
            pending: 0,
        }
    }

    fn bucket_of(&self, cycle: Cycle) -> usize {
        (cycle as usize) & (self.wheel.len() - 1)
    }

    fn schedule(&mut self, arrival: Cycle, switch: usize, dir: usize) {
        debug_assert!(
            arrival >= self.next,
            "arrival {arrival} scheduled behind the drain cursor {}",
            self.next
        );
        let entry = (switch as u32, dir as u8);
        if arrival - self.next < self.wheel.len() as Cycle {
            let b = self.bucket_of(arrival);
            self.wheel[b].push(entry);
        } else {
            self.overflow.entry(arrival).or_default().push(entry);
        }
        self.pending += 1;
    }

    /// Fills `out` with the earliest batch due at or before `now` (replacing
    /// its contents, keeping its allocation) and returns `true`, or returns
    /// `false` when nothing is ripe. Within a batch, entries come out in
    /// schedule order.
    fn pop_ripe_into(&mut self, now: Cycle, out: &mut Vec<(u32, u8)>) -> bool {
        out.clear();
        if self.pending == 0 {
            // Re-anchor the cursor so the wheel horizon always starts at the
            // present when traffic resumes.
            self.next = now + 1;
            return false;
        }
        while self.next <= now {
            let cycle = self.next;
            if let Some((&c, _)) = self.overflow.first_key_value() {
                if c == cycle {
                    let far = self.overflow.remove(&c).expect("key just observed");
                    out.extend_from_slice(&far);
                }
            }
            // `append` empties the bucket while keeping its allocation.
            let b = self.bucket_of(cycle);
            out.append(&mut self.wheel[b]);
            self.next += 1;
            if !out.is_empty() {
                self.pending -= out.len();
                return true;
            }
        }
        false
    }

    fn clear(&mut self) {
        for bucket in &mut self.wheel {
            bucket.clear();
        }
        self.overflow.clear();
        self.pending = 0;
    }
}

/// Forward-phase instrumentation counters, cumulative over the network's
/// lifetime. These never feed back into the schedule (they are not part of
/// [`NetStats`]), so serial and parallel runs of the same workload report
/// identical simulation digests while this probe records how the work was
/// executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForwardProbe {
    /// Switches visited by the forward phase (serial or parallel).
    pub switch_visits: u64,
    /// Cycles whose forward phase ran on the worker pool.
    pub parallel_phases: u64,
    /// Switch tasks executed inside parallel phases.
    pub parallel_tasks: u64,
    /// Sum over parallel phases of the dependency-DAG critical-path length
    /// (the longest chain of adjacent active switches). A deterministic
    /// imbalance measure: phases whose critical path approaches their task
    /// count parallelize poorly regardless of worker count.
    pub critical_path_sum: u64,
}

/// Per-task staging area for schedule-order side effects of the parallel
/// forward phase. Workers append here during the wavefront; the merge pass
/// drains every task in serial visit order, so the globally ordered
/// structures (ordering tracker, stats, arrival calendar, worklists)
/// observe exactly the serial sequence.
#[derive(Debug, Default)]
struct TaskEffects {
    /// Ejected packets: `(src, dst, vnet, seq, latency)` in ejection order.
    deliveries: Vec<(NodeId, NodeId, VirtualNetwork, u64, Cycle)>,
    /// Link arrivals to schedule: `(arrival, switch, direction)` in order.
    arrivals: Vec<(Cycle, u32, u8)>,
    /// Packets moved into this node's ejection queues.
    ejected: u32,
    /// Link hops performed.
    hops: u32,
    /// Whether any packet moved (watchdog progress).
    progress: bool,
    /// Whether the switch drained to zero queued packets.
    deactivate: bool,
}

/// Reusable buffers for the parallel forward phase (visit-order snapshot,
/// dependency DAG, wavefront queue, per-task staging). Holds no simulation
/// state between phases.
#[derive(Debug, Default)]
struct ParForwardScratch {
    /// Active switches in serial visit order.
    order: Vec<u32>,
    /// Inverse of `order` (`u32::MAX` = not active this phase); length
    /// `num_nodes`, reset after each phase.
    visit_pos: Vec<u32>,
    /// Successor task positions (padding `u32::MAX`).
    succ: Vec<[u32; 4]>,
    /// Longest predecessor chain ending at each task (critical-path probe).
    depth: Vec<u32>,
    /// Unfinished-predecessor counts, decremented by workers.
    indeg: Vec<AtomicU32>,
    /// Wavefront slots: slot `k` holds the `k`-th task to become runnable
    /// (`u32::MAX` until published).
    ready: Vec<AtomicU32>,
    /// Per-task staged side effects.
    stage: Vec<TaskEffects>,
}

impl Clone for ParForwardScratch {
    fn clone(&self) -> Self {
        // Scratch carries no state between phases; checkpoint clones of the
        // network start with an empty scratch.
        Self::default()
    }
}

/// Raw-pointer view of the slab rows, arena and staging area that the
/// parallel forward workers touch. Safety rests on the dependency DAG: a
/// task writes only its own switch's rows (queues, round-robin and queue
/// counters, link state, ejection queues) plus the `reserved` credit column
/// of the downstream buffer slots that face it — slots no other
/// concurrently-running task can reach, because tasks of adjacent active
/// switches are ordered by the DAG and every port of a switch faces exactly
/// one neighbour. The arena is read-only during the phase (faults, the only
/// writers of in-fabric packets, disable the parallel path).
struct ParShared<P> {
    queues: *mut VecDeque<u32>,
    reserved: *mut u32,
    cap: *const u32,
    rr_next: *mut u32,
    queued: *mut u32,
    queued_total: *mut u32,
    busy_until: *mut Cycle,
    in_transit: *mut VecDeque<InTransit>,
    util: *mut UtilizationTracker,
    arena: *const PacketArena<P>,
    eject: *mut Vec<MsgQueue<u32>>,
    eject_pending: *mut usize,
    stage: *mut TaskEffects,
    bpp: usize,
}

unsafe impl<P: Sync> Sync for ParShared<P> {}

/// A 2D-torus interconnection network carrying packets with payload type `P`.
///
/// The network is advanced by calling [`Network::tick`] once per cycle.
/// Endpoints interact with it only through [`Network::inject`] and the
/// ejection-queue accessors; everything in between (switch arbitration, link
/// serialization, virtual-channel flow control, routing) is internal.
#[derive(Debug, Clone)]
pub struct Network<P> {
    torus: Torus,
    cfg: NetConfig,
    layout: BufferLayout,
    routing: RoutingPolicy,
    /// All per-switch state, flattened into contiguous arrays.
    slab: SwitchSlab,
    /// Packet payloads, indexed by the dense ids the slab queues hold.
    arena: PacketArena<P>,
    eject: Vec<Vec<MsgQueue<u32>>>,
    eject_rr: Vec<usize>,
    /// Messages currently waiting in each node's ejection queues (incremental
    /// mirror of the queue lengths; lets endpoints skip idle nodes in O(1)).
    eject_pending: Vec<usize>,
    /// Worklist of nodes with `eject_pending > 0`, so endpoint ingest can
    /// walk only the nodes holding deliverable packets instead of scanning
    /// all `num_nodes` every cycle.
    eject_active: ActiveSet,
    ordering: OrderingTracker,
    stats: NetStats,
    watchdog: ProgressWatchdog,
    /// Per-node shared slot pools ([`specsim_base::BufferPolicy::SharedPool`]
    /// only; `None` in virtual-network provisioning, whose behavior this
    /// leaves bit-identical). A node's pool covers its switch input-port
    /// buffers (including the injection port) and its ejection queues: a slot
    /// is taken at injection or when a hop reserves downstream space, moves
    /// with the packet from node to node, and is freed when the endpoint
    /// drains the packet from an ejection queue. When the budget is split
    /// ([`NetConfig::pool_split`]), these pools cover only the switch side
    /// (input-port buffers and in-transit link reservations) and
    /// [`Network::endpoint_pools`] covers the ejection queues.
    pools: Option<Vec<SlotPool>>,
    /// Per-node endpoint slot pools, present only under a split budget: an
    /// ejecting packet trades its switch slot for an endpoint slot, so
    /// ejection back-pressure and switch congestion stop sharing one budget.
    endpoint_pools: Option<Vec<SlotPool>>,
    /// Number of pools currently at full occupancy (incremental mirror;
    /// feeds the O(1) deadlock-evidence check [`Network::has_exhausted_pool`]).
    full_pools: usize,
    /// Number of endpoint pools at full occupancy (split budgets only).
    full_endpoint_pools: usize,
    in_flight: usize,
    /// Worklist of switches holding at least one queued packet.
    active: ActiveSet,
    /// Due-cycle index over in-transit link arrivals.
    arrivals: ArrivalCalendar,
    /// Reusable batch buffer for draining the calendar (the wheel's buckets
    /// and this scratch space together make steady-state delivery
    /// allocation-free).
    arrival_scratch: Vec<(u32, u8)>,
    /// Forwarding rounds executed so far. Every switch's port round-robin
    /// pointer advances by exactly one per round whether or not the switch
    /// moved anything, so the per-switch pointer of the old exhaustive scan
    /// is equivalent to this single shared counter (mod the port count).
    forward_rounds: u64,
    /// Forward-phase execution counters (not part of [`NetStats`]).
    forward_probe: ForwardProbe,
    /// Parallel-phase scratch (allocations reused across cycles).
    par_scratch: ParForwardScratch,
}

impl<P> Network<P> {
    /// Builds a network from a configuration.
    #[must_use]
    pub fn new(cfg: NetConfig) -> Self {
        let torus = match cfg.torus_dims {
            Some((w, h)) => {
                assert_eq!(
                    w * h,
                    cfg.num_nodes,
                    "torus_dims {w}x{h} does not cover num_nodes = {}",
                    cfg.num_nodes
                );
                Torus::rectangular(w, h)
            }
            None => Torus::new(cfg.num_nodes),
        };
        let layout = cfg.layout();
        let (pools, endpoint_pools) = match cfg.pool_split() {
            Some((switch_slots, endpoint_slots)) => (
                Some(vec![SlotPool::new(switch_slots); cfg.num_nodes]),
                Some(vec![SlotPool::new(endpoint_slots); cfg.num_nodes]),
            ),
            None => (
                cfg.pool_slots()
                    .map(|slots| vec![SlotPool::new(slots); cfg.num_nodes]),
                None,
            ),
        };
        let pooled = pools.is_some();
        let slab = SwitchSlab::new(cfg.num_nodes, &layout, pooled);
        let eject = (0..cfg.num_nodes)
            .map(|_| {
                (0..layout.ejection_queues())
                    .map(|_| match layout.ejection_capacity().filter(|_| !pooled) {
                        Some(c) => MsgQueue::bounded(c),
                        None => MsgQueue::unbounded(),
                    })
                    .collect()
            })
            .collect();
        let num_links = 4 * cfg.num_nodes;
        let routing = cfg.routing;
        Self {
            torus,
            layout,
            routing,
            slab,
            arena: PacketArena::new(),
            eject,
            eject_rr: vec![0; cfg.num_nodes],
            eject_pending: vec![0; cfg.num_nodes],
            eject_active: ActiveSet::new(cfg.num_nodes),
            ordering: OrderingTracker::new(),
            stats: NetStats::new(num_links),
            watchdog: ProgressWatchdog::new(cfg.stall_threshold),
            pools,
            endpoint_pools,
            full_pools: 0,
            full_endpoint_pools: 0,
            in_flight: 0,
            active: ActiveSet::new(cfg.num_nodes),
            // The longest common scheduling distance is a data message's
            // serialization plus the switch pipeline; sizing the wheel to
            // cover it keeps steady-state traffic out of the overflow map
            // even on slow (or custom slower-than-Table-2) links.
            arrivals: ArrivalCalendar::with_horizon(
                cfg.link_bandwidth
                    .serialization_cycles(specsim_base::DATA_MSG_BYTES)
                    + cfg.switch_latency,
            ),
            arrival_scratch: Vec::new(),
            forward_rounds: 0,
            forward_probe: ForwardProbe::default(),
            par_scratch: ParForwardScratch::default(),
            cfg,
        }
    }

    /// Number of nodes (and switches).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.cfg.num_nodes
    }

    /// The topology object (for distance queries in tests and experiments).
    #[must_use]
    pub fn torus(&self) -> &Torus {
        &self.torus
    }

    /// The routing policy currently in force.
    #[must_use]
    pub fn routing(&self) -> RoutingPolicy {
        self.routing
    }

    /// Changes the routing policy at runtime. This is the forward-progress
    /// knob of Section 3.1: after a recovery the system "selectively
    /// disable\[s\] adaptive routing during re-execution".
    pub fn set_routing(&mut self, routing: RoutingPolicy) {
        self.routing = routing;
    }

    /// True when this network provisions buffers from shared per-node slot
    /// pools (the speculative Section 4 design, in which deadlock is
    /// possible).
    #[must_use]
    pub fn is_pooled(&self) -> bool {
        self.pools.is_some()
    }

    /// True when this network splits its slot budget between switch-side
    /// and endpoint-side pools ([`NetConfig::pool_split`]).
    #[must_use]
    pub fn is_pool_split(&self) -> bool {
        self.endpoint_pools.is_some()
    }

    /// Installs a per-virtual-network reservation of `r` slots in every
    /// node's pool (the conservative forward-progress mode applied during
    /// post-deadlock re-execution); `r = 0` returns to fully shared slots.
    /// Under a split budget the reservation applies to both sides.
    /// Returns `false` (and does nothing) when the network is not pooled.
    pub fn set_pool_reservation(&mut self, r: usize) -> bool {
        match &mut self.pools {
            Some(pools) => {
                for p in pools {
                    p.set_reservation(r);
                }
                if let Some(pools) = &mut self.endpoint_pools {
                    for p in pools {
                        p.set_reservation(r);
                    }
                }
                true
            }
            None => false,
        }
    }

    /// The per-virtual-network reservation currently in force (`None` when
    /// the network is not pooled).
    #[must_use]
    pub fn pool_reservation(&self) -> Option<usize> {
        self.pools.as_ref().map(|p| p[0].reservation())
    }

    /// Per-node pool occupancy (held slots) of the switch-side pools, for
    /// diagnostics and tests. Empty when the network is not pooled.
    #[must_use]
    pub fn pool_occupancy_snapshot(&self) -> Vec<usize> {
        self.pools
            .as_ref()
            .map(|pools| pools.iter().map(SlotPool::occupancy).collect())
            .unwrap_or_default()
    }

    /// Per-node endpoint pool occupancy under a split budget. Empty when
    /// the budget is unified (or the network is unpooled).
    #[must_use]
    pub fn endpoint_pool_occupancy_snapshot(&self) -> Vec<usize> {
        self.endpoint_pools
            .as_ref()
            .map(|pools| pools.iter().map(SlotPool::occupancy).collect())
            .unwrap_or_default()
    }

    fn pool_can(&self, node: usize, vnet: VirtualNetwork) -> bool {
        self.pools
            .as_ref()
            .map_or(true, |p| p[node].can_acquire(vnet.index()))
    }

    fn pool_acquire(&mut self, node: usize, vnet: VirtualNetwork) {
        if let Some(pools) = &mut self.pools {
            pools[node].acquire(vnet.index());
            if pools[node].occupancy() == pools[node].total() {
                self.full_pools += 1;
            }
        }
    }

    fn pool_release(&mut self, node: usize, vnet: VirtualNetwork) {
        if let Some(pools) = &mut self.pools {
            if pools[node].occupancy() == pools[node].total() {
                self.full_pools -= 1;
            }
            pools[node].release(vnet.index());
        }
    }

    /// True when an ejection at `node` can take the slot it needs: under a
    /// split budget an ejecting packet trades its switch slot for an
    /// endpoint slot, so the endpoint pool must have room; under a unified
    /// budget the packet keeps the slot it already holds.
    fn endpoint_can(&self, node: usize, vnet: VirtualNetwork) -> bool {
        self.endpoint_pools
            .as_ref()
            .map_or(true, |p| p[node].can_acquire(vnet.index()))
    }

    fn endpoint_acquire(&mut self, node: usize, vnet: VirtualNetwork) {
        if let Some(pools) = &mut self.endpoint_pools {
            pools[node].acquire(vnet.index());
            if pools[node].occupancy() == pools[node].total() {
                self.full_endpoint_pools += 1;
            }
        }
    }

    fn endpoint_release(&mut self, node: usize, vnet: VirtualNetwork) {
        if let Some(pools) = &mut self.endpoint_pools {
            if pools[node].occupancy() == pools[node].total() {
                self.full_endpoint_pools -= 1;
            }
            pools[node].release(vnet.index());
        }
    }

    /// Frees the slot held by a packet leaving an ejection queue: the
    /// endpoint pool under a split budget, the unified pool otherwise.
    fn release_ejected_slot(&mut self, node: usize, vnet: VirtualNetwork) {
        if self.endpoint_pools.is_some() {
            self.endpoint_release(node, vnet);
        } else {
            self.pool_release(node, vnet);
        }
    }

    /// True when at least one node's shared pool (switch- or endpoint-side)
    /// is at full occupancy — the evidence that ties a coherence-transaction
    /// timeout to buffer exhaustion (a detected buffer-dependency deadlock)
    /// rather than plain latency. Always `false` for unpooled networks.
    #[must_use]
    pub fn has_exhausted_pool(&self) -> bool {
        self.full_pools > 0 || self.full_endpoint_pools > 0
    }

    /// True when a packet of class `vnet` can be injected at `src` this
    /// cycle.
    #[must_use]
    pub fn can_inject(&self, src: NodeId, vnet: VirtualNetwork) -> bool {
        let b = self.layout.injection_buffer_index(vnet);
        let s = self.slab.slot(src.index(), Direction::Local.index(), b);
        self.slab.has_space(s) && self.pool_can(src.index(), vnet)
    }

    /// Injects a packet. On success the packet is stamped with a sequence
    /// number and queued at the source switch's local port; on failure the
    /// payload is returned so the caller can retry later.
    pub fn inject(
        &mut self,
        now: Cycle,
        src: NodeId,
        dst: NodeId,
        vnet: VirtualNetwork,
        size: MessageSize,
        payload: P,
    ) -> Result<(), InjectError<P>> {
        if !self.can_inject(src, vnet) {
            self.stats.injection_rejects.incr();
            return Err(InjectError(payload));
        }
        let seq = self.ordering.stamp(src, dst, vnet);
        let packet = Packet {
            src,
            dst,
            vnet,
            size,
            seq,
            injected_at: now,
            taint: PacketTaint::Clean,
            payload,
        };
        let i = src.index();
        let b = self.layout.injection_buffer_index(vnet);
        let s = self.slab.slot(i, Direction::Local.index(), b);
        let id = self.arena.alloc(packet);
        self.slab
            .push(s, id)
            .unwrap_or_else(|()| panic!("injection space was checked"));
        self.slab.queued[SwitchSlab::port(i, Direction::Local.index())] += 1;
        self.slab.queued_total[i] += 1;
        self.pool_acquire(i, vnet);
        self.active.insert(i);
        self.stats.injected.incr();
        self.in_flight += 1;
        Ok(())
    }

    /// Advances the network by one cycle: first delivers link arrivals into
    /// downstream buffers, then lets every switch forward up to one packet
    /// per input port.
    pub fn tick(&mut self, now: Cycle)
    where
        P: Clone + Send + Sync,
    {
        self.tick_faulted_with_pool(now, None, None);
    }

    /// [`Network::tick`] with an optional worker pool: a sufficiently busy,
    /// fault-free, unpooled forward phase fans out over the pool's threads
    /// (byte-identical schedule — see the module docs). `None`, a
    /// single-threaded pool, or an idle cycle all take the serial path.
    pub fn tick_with_pool(&mut self, now: Cycle, pool: Option<&WorkerPool>)
    where
        P: Clone + Send + Sync,
    {
        self.tick_faulted_with_pool(now, None, pool);
    }

    /// [`Network::tick`] with an optional fault director. When present, the
    /// director's schedule is consulted at every link transmit (drop /
    /// duplicate / delay / corrupt), switch visit (stall / blackout window)
    /// and ejection (inbox-drop window). `None` is a strict no-op relative
    /// to [`Network::tick`] — the schedule stays bit-identical.
    pub fn tick_faulted(&mut self, now: Cycle, faults: Option<&mut FaultDirector>)
    where
        P: Clone + Send + Sync,
    {
        self.tick_faulted_with_pool(now, faults, None);
    }

    /// [`Network::tick_faulted`] with an optional worker pool (see
    /// [`Network::tick_with_pool`]). Cycles with an armed fault director
    /// always forward serially: faults mutate in-fabric packets and
    /// cross-switch state in ways the parallel dependency analysis does not
    /// cover, and faulted campaigns are never the performance path.
    pub fn tick_faulted_with_pool(
        &mut self,
        now: Cycle,
        mut faults: Option<&mut FaultDirector>,
        pool: Option<&WorkerPool>,
    ) where
        P: Clone + Send + Sync,
    {
        if let Some(f) = faults.as_deref_mut() {
            f.advance(now);
        }
        self.deliver_phase(now, faults.as_deref());
        self.forward_phase(now, faults, pool);
    }

    /// Forward-phase execution counters (how the work was run, not what it
    /// computed — identical workloads report identical [`NetStats`] however
    /// these counters split).
    #[must_use]
    pub fn forward_probe(&self) -> ForwardProbe {
        self.forward_probe
    }

    /// Messages currently inside the network fabric (injected but not yet
    /// placed in an ejection queue).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Total messages waiting in `node`'s ejection queues.
    #[must_use]
    pub fn ejection_len(&self, node: NodeId) -> usize {
        self.eject_pending[node.index()]
    }

    /// True when at least one delivered packet is waiting in `node`'s
    /// ejection queues. O(1); system layers use this to skip ingest polling
    /// for idle endpoints.
    #[must_use]
    pub fn has_ejectable(&self, node: NodeId) -> bool {
        self.eject_pending[node.index()] > 0
    }

    /// The lowest node index `>= from` whose ejection queues hold at least
    /// one deliverable packet, or `None` when no node at or past `from` does.
    /// Walking this cursor visits exactly the nodes a dense ascending scan
    /// with a [`Network::has_ejectable`] filter would, in the same order, but
    /// in time proportional to the nodes with work rather than `num_nodes`.
    #[must_use]
    pub fn next_ejectable_at_or_after(&self, from: usize) -> Option<usize> {
        self.eject_active.next_at_or_after(from)
    }

    /// Removes the next packet from `node`'s ejection queue for a specific
    /// virtual network (meaningful in virtual-channel mode; in shared-buffer
    /// mode all classes share one queue and this behaves like
    /// [`Network::eject_any`]).
    pub fn eject_from(&mut self, node: NodeId, vnet: VirtualNetwork) -> Option<Packet<P>> {
        let q = self.layout.ejection_index(vnet);
        let id = self.eject[node.index()][q].pop()?;
        self.eject_pending[node.index()] -= 1;
        if self.eject_pending[node.index()] == 0 {
            self.eject_active.remove(node.index());
        }
        let p = self.arena.take(id);
        self.release_ejected_slot(node.index(), p.vnet);
        Some(p)
    }

    /// Peeks the next packet that [`Network::eject_from`] would return.
    #[must_use]
    pub fn peek_from(&self, node: NodeId, vnet: VirtualNetwork) -> Option<&Packet<P>> {
        let q = self.layout.ejection_index(vnet);
        self.eject[node.index()][q]
            .peek()
            .map(|&id| self.arena.get(id))
    }

    /// Removes the next packet from any of `node`'s ejection queues,
    /// rotating across queues for fairness.
    pub fn eject_any(&mut self, node: NodeId) -> Option<Packet<P>> {
        let i = node.index();
        if self.eject_pending[i] == 0 {
            return None;
        }
        let n = self.eject[i].len();
        for k in 0..n {
            let q = (self.eject_rr[i] + k) % n;
            if let Some(id) = self.eject[i][q].pop() {
                self.eject_rr[i] = (q + 1) % n;
                self.eject_pending[i] -= 1;
                if self.eject_pending[i] == 0 {
                    self.eject_active.remove(i);
                }
                let p = self.arena.take(id);
                self.release_ejected_slot(i, p.vnet);
                return Some(p);
            }
        }
        unreachable!("eject_pending said a packet was waiting")
    }

    /// Peeks the packet at the head of `node`'s single shared ejection queue
    /// (shared-buffer / worst-case modes). In virtual-channel mode this peeks
    /// the queue that the fairness rotation would serve next.
    #[must_use]
    pub fn peek_any(&self, node: NodeId) -> Option<&Packet<P>> {
        let i = node.index();
        let n = self.eject[i].len();
        (0..n)
            .map(|k| (self.eject_rr[i] + k) % n)
            .find_map(|q| self.eject[i][q].peek().copied())
            .map(|id| self.arena.get(id))
    }

    /// Network statistics.
    #[must_use]
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Point-to-point ordering statistics.
    #[must_use]
    pub fn ordering(&self) -> &OrderingTracker {
        &self.ordering
    }

    /// Mean utilization across every unidirectional link over `[0, now]`.
    #[must_use]
    pub fn mean_link_utilization(&self, now: Cycle) -> f64 {
        if now == 0 {
            return 0.0;
        }
        let busy: u64 = self.slab.util.iter().map(|u| u.busy_cycles()).sum();
        let links = (4 * self.num_nodes()) as f64;
        (busy as f64 / (links * now as f64)).clamp(0.0, 1.0)
    }

    /// True when the fabric holds messages but none has moved for the
    /// watchdog threshold (a deadlock or a complete endpoint stall).
    #[must_use]
    pub fn is_stalled(&self, now: Cycle) -> bool {
        self.watchdog.is_stalled(now, self.in_flight)
    }

    /// Sets how many quiet cycles the progress watchdog tolerates before
    /// reporting a stall, overriding [`NetConfig::stall_threshold`] on a live
    /// network.
    pub fn set_stall_threshold(&mut self, threshold: u64) {
        self.watchdog = ProgressWatchdog::new(threshold);
    }

    /// Total messages queued at each switch (diagnostic snapshot).
    #[must_use]
    pub fn occupancy_snapshot(&self) -> Vec<usize> {
        (0..self.slab.num_nodes())
            .map(|i| self.slab.node_occupancy(i))
            .collect()
    }

    /// Drops every message in the fabric and the ejection queues (recovery
    /// drain; SafetyNet rollback discards all in-flight coherence messages).
    /// Returns the number of messages dropped.
    pub fn drain(&mut self, now: Cycle) -> usize {
        let mut dropped_ids = Vec::new();
        self.slab.clear_all(&mut dropped_ids);
        let mut dropped = dropped_ids.len();
        for queues in &mut self.eject {
            for q in queues {
                dropped += q.len();
                q.clear();
            }
        }
        self.arena.clear();
        self.eject_pending.fill(0);
        self.eject_active.clear();
        if let Some(pools) = &mut self.pools {
            for p in pools {
                p.clear();
            }
        }
        if let Some(pools) = &mut self.endpoint_pools {
            for p in pools {
                p.clear();
            }
        }
        self.full_pools = 0;
        self.full_endpoint_pools = 0;
        self.in_flight = 0;
        self.active.clear();
        self.arrivals.clear();
        self.watchdog.reset(now);
        dropped
    }

    fn deliver_phase(&mut self, now: Cycle, faults: Option<&FaultDirector>) {
        let mut batch = std::mem::take(&mut self.arrival_scratch);
        while self.arrivals.pop_ripe_into(now, &mut batch) {
            for &(si, di) in &batch {
                let i = si as usize;
                let d = LINK_DIRECTIONS[di as usize];
                let InTransit {
                    arrival,
                    target_slot,
                    id,
                } = self.slab.in_transit[SwitchSlab::link(i, d.index())]
                    .pop_front()
                    .expect("calendar entry without an in-transit message");
                debug_assert!(arrival <= now, "calendar delivered an unripe arrival");
                let j = self.torus.neighbor(NodeId::from(i), d).index();
                let ts = target_slot as usize;
                if faults.is_some_and(|f| f.switch_blacked_out(j)) {
                    // A blacked-out switch loses its arrivals: give back the
                    // buffer reservation and the slot the hop took, and the
                    // message simply ceases to exist.
                    self.slab.release_reservation(ts);
                    let vnet = self.arena.take(id).vnet;
                    self.pool_release(j, vnet);
                    self.in_flight = self.in_flight.saturating_sub(1);
                    self.watchdog.record_progress(now);
                    continue;
                }
                self.slab.accept_reserved(ts, id);
                self.slab.queued[SwitchSlab::port(j, d.opposite().index())] += 1;
                self.slab.queued_total[j] += 1;
                self.active.insert(j);
                self.watchdog.record_progress(now);
            }
        }
        self.arrival_scratch = batch;
    }

    fn forward_phase(
        &mut self,
        now: Cycle,
        mut faults: Option<&mut FaultDirector>,
        pool: Option<&WorkerPool>,
    ) where
        P: Clone + Send + Sync,
    {
        // The port round-robin pointer advances once per round on every
        // switch (active or not), exactly as the exhaustive scan did.
        let start_port = (self.forward_rounds % ALL_PORTS.len() as u64) as usize;
        self.forward_rounds += 1;
        if self.active.is_empty() {
            return;
        }
        // The parallel path's conflict analysis covers the fault-free,
        // unpooled fabric only: faults mutate packets and drop reservations
        // across switches, and shared slot pools couple switches two hops
        // apart (a hop reads and writes both endpoints' pools). Everything
        // else — including pooled or faulted cycles — forwards serially,
        // which is byte-identical anyway.
        // Gated on the pool's *physical* thread count: the sharded schedule
        // is byte-identical to the serial scan either way (so this choice is
        // digest-neutral), but planning shards for a pool that degraded to
        // one thread — a single-core host — is pure overhead. Determinism
        // tests that need the sharded path regardless of host cores hand in
        // a `WorkerPool::with_exact_threads` pool.
        let parallel = faults.is_none()
            && self.pools.is_none()
            && self.active.len() >= PARALLEL_FORWARD_MIN_ACTIVE
            && pool.is_some_and(|p| p.threads() > 1);
        if parallel {
            self.forward_phase_parallel(now, start_port, pool.expect("gate checked the pool"));
            return;
        }
        let n = self.slab.num_nodes();
        let rotation = (now as usize) % n.max(1);
        // Visit the active switches in the per-cycle rotation order
        // `rotation, rotation+1, …, n-1, 0, …, rotation-1` via the sparse
        // bitmap cursor: O(n/64 + |active|) instead of the O(n) dense
        // membership scan, which matters once machines grow past 16 nodes.
        // Forwarding only ever deactivates the switch being processed (never
        // a later one, and it activates none), so an explicit cursor over
        // `next_at_or_after` visits exactly the switches the dense rotation
        // scan would have, in the same order — the schedule stays
        // bit-identical.
        let mut pos = rotation;
        while let Some(i) = self.active.next_at_or_after(pos) {
            self.forward_switch(i, now, start_port, faults.as_deref_mut());
            pos = i + 1;
        }
        let mut pos = 0;
        while pos < rotation {
            match self.active.next_at_or_after(pos) {
                Some(i) if i < rotation => {
                    self.forward_switch(i, now, start_port, faults.as_deref_mut());
                    pos = i + 1;
                }
                _ => break,
            }
        }
    }

    fn forward_switch(
        &mut self,
        i: usize,
        now: Cycle,
        start_port: usize,
        mut faults: Option<&mut FaultDirector>,
    ) where
        P: Clone,
    {
        self.forward_probe.switch_visits += 1;
        // A stalled (or blacked-out) switch forwards nothing while its fault
        // window is open; it stays on the worklist and resumes afterwards.
        if faults.as_deref().is_some_and(|f| f.switch_stalled(i)) {
            return;
        }
        // Congestion inputs (link state, downstream occupancy) are immutable
        // during the read-only planning pass, so the four-direction metric is
        // computed at most once per applied move instead of once per queued
        // packet; it must be refreshed after a move, which the subsequent
        // ports of this switch observe exactly as the exhaustive scan did.
        // Static routing never consults the metric, so it skips the
        // neighbour-gathering entirely.
        let adaptive = self.routing == RoutingPolicy::Adaptive;
        let mut congestion: Option<[usize; 4]> = None;
        for pk in 0..ALL_PORTS.len() {
            let p = (start_port + pk) % ALL_PORTS.len();
            if self.slab.queued[SwitchSlab::port(i, p)] == 0 {
                continue;
            }
            let c = if adaptive {
                *congestion
                    .get_or_insert_with(|| Self::congestion_of(&self.slab, &self.torus, i, now))
            } else {
                [0usize; 4]
            };
            if let Some(decision) = self.plan_port_move(i, p, now, &c) {
                self.apply_move(i, p, decision, now, faults.as_deref_mut());
                congestion = None;
            }
        }
    }

    /// The adaptive-routing congestion metric for each outgoing direction of
    /// switch `i`: messages on the link, the link-busy flag, and the
    /// occupancy of the downstream input port.
    fn congestion_of(slab: &SwitchSlab, torus: &Torus, i: usize, now: Cycle) -> [usize; 4] {
        let node = NodeId::from(i);
        let mut congestion = [0usize; 4];
        for d in LINK_DIRECTIONS {
            let di = d.index();
            let l = SwitchSlab::link(i, di);
            let j = torus.neighbor(node, d).index();
            let opp = d.opposite().index();
            congestion[di] = slab.in_transit[l].len()
                + usize::from(!slab.link_is_free(l, now))
                + slab.port_occupancy(j, opp);
        }
        congestion
    }

    /// Read-only pass: decide which (if any) packet of input port `p` of
    /// switch `i` can move this cycle, and where to. `congestion` is the
    /// per-direction congestion metric, computed once per switch visit (its
    /// inputs cannot change during planning).
    fn plan_port_move(
        &self,
        i: usize,
        p: usize,
        now: Cycle,
        congestion: &[usize; 4],
    ) -> Option<MoveDecision> {
        let node = NodeId::from(i);
        let nb = self.slab.buffers_per_port;
        let incoming = ALL_PORTS[p];
        let rr = self.slab.rr_next[SwitchSlab::port(i, p)] as usize;
        for bk in 0..nb {
            let b = (rr + bk) % nb;
            let Some(&id) = self.slab.queues[self.slab.slot(i, p, b)].front() else {
                continue;
            };
            let pkt = self.arena.get(id);
            // Local delivery. Under a split pool budget the ejecting packet
            // must additionally win an endpoint slot (it trades its switch
            // slot away); under a unified budget it keeps the slot it holds.
            if pkt.dst == node {
                let q = self.layout.ejection_index(pkt.vnet);
                if !self.eject[i][q].is_full() && self.endpoint_can(i, pkt.vnet) {
                    return Some(MoveDecision {
                        buffer: b,
                        action: MoveAction::Eject { queue: q },
                    });
                }
                continue; // head blocked on ejection space; try other buffers
            }
            let cands = route_candidates(&self.torus, self.routing, node, pkt.dst, congestion);
            let current_vc = self.layout.vc_of_buffer(b);
            let serialization = self.cfg.link_bandwidth.serialization_cycles(pkt.bytes());

            let try_hop = |dir: Direction, use_adaptive: bool| -> Option<MoveDecision> {
                let di = dir.index();
                if !self.slab.link_is_free(SwitchSlab::link(i, di), now) {
                    return None;
                }
                let crosses = self.torus.crosses_dateline(node, dir);
                let j = self.torus.neighbor(node, dir).index();
                let opp = dir.opposite().index();
                let tb = self.layout.next_buffer_index(
                    pkt.vnet,
                    current_vc,
                    incoming,
                    dir,
                    crosses,
                    use_adaptive,
                );
                let target_slot = self.slab.slot(j, opp, tb);
                if self.slab.has_space(target_slot) && self.pool_can(j, pkt.vnet) {
                    Some(MoveDecision {
                        buffer: b,
                        action: MoveAction::Forward {
                            dir,
                            target_slot,
                            serialization,
                        },
                    })
                } else {
                    None
                }
            };

            if cands.adaptive {
                // Duato's scheme: prefer the fully adaptive channel on any
                // productive direction (least congested first) and fall back
                // to the escape (dimension-order, dateline) channel.
                for &dir in &cands.directions {
                    if let Some(m) = try_hop(dir, true) {
                        return Some(m);
                    }
                }
                let dor = self.torus.dimension_order_direction(node, pkt.dst);
                if let Some(m) = try_hop(dor, false) {
                    return Some(m);
                }
            } else {
                for &dir in &cands.directions {
                    if dir == Direction::Local {
                        break;
                    }
                    if let Some(m) = try_hop(dir, false) {
                        return Some(m);
                    }
                }
            }
        }
        None
    }

    /// Mutating pass: execute a planned move, consulting the fault director
    /// (if any) at the link-transmit and ejection hooks.
    fn apply_move(
        &mut self,
        i: usize,
        p: usize,
        decision: MoveDecision,
        now: Cycle,
        faults: Option<&mut FaultDirector>,
    ) where
        P: Clone,
    {
        let s = self.slab.slot(i, p, decision.buffer);
        match decision.action {
            MoveAction::Eject { queue } => {
                let id = self.slab.queues[s]
                    .pop_front()
                    .expect("planned packet vanished");
                if faults.as_deref().is_some_and(|f| f.inbox_dropped(i)) {
                    // Dead network interface: the ejected message is lost
                    // before it reaches the endpoint. Its slot is freed from
                    // the switch pool (it never takes an endpoint slot).
                    let vnet = self.arena.take(id).vnet;
                    self.pool_release(i, vnet);
                    self.in_flight = self.in_flight.saturating_sub(1);
                    self.watchdog.record_progress(now);
                } else {
                    let (src, dst, vnet, seq, injected_at) = {
                        let pkt = self.arena.get(id);
                        (pkt.src, pkt.dst, pkt.vnet, pkt.seq, pkt.injected_at)
                    };
                    if self.endpoint_pools.is_some() {
                        // Split budget: trade the switch slot for the
                        // endpoint slot the planning pass checked.
                        self.pool_release(i, vnet);
                        self.endpoint_acquire(i, vnet);
                    }
                    let latency = now.saturating_sub(injected_at);
                    self.ordering.observe_delivery(src, dst, vnet, seq);
                    self.stats.record_delivery(vnet, latency);
                    self.eject[i][queue]
                        .push(id)
                        .unwrap_or_else(|_| panic!("ejection space was checked during planning"));
                    self.eject_pending[i] += 1;
                    self.eject_active.insert(i);
                    self.in_flight = self.in_flight.saturating_sub(1);
                    self.watchdog.record_progress(now);
                }
            }
            MoveAction::Forward {
                dir,
                target_slot,
                serialization,
            } => {
                let id = self.slab.queues[s]
                    .pop_front()
                    .expect("planned packet vanished");
                let j = self.torus.neighbor(NodeId::from(i), dir).index();
                let vnet = self.arena.get(id).vnet;
                // Fault injection at link transmit: at most one armed
                // message fault fires per transmit.
                let fired = faults.and_then(|f| f.message_fault(now, i, dir.index(), vnet.index()));
                if matches!(fired, Some((FaultKind::Drop, _))) {
                    // The message vanishes on the link: free this node's
                    // slot and never touch the downstream side.
                    self.arena.take(id);
                    self.pool_release(i, vnet);
                    self.in_flight = self.in_flight.saturating_sub(1);
                    self.watchdog.record_progress(now);
                } else {
                    let delay = match fired {
                        Some((FaultKind::Delay, param)) => param,
                        _ => 0,
                    };
                    if matches!(fired, Some((FaultKind::Corrupt, _))) {
                        self.arena.get_mut(id).taint = PacketTaint::Corrupt;
                    }
                    let duplicate = matches!(fired, Some((FaultKind::Duplicate, _)));
                    // The slot credit travels with the packet: the hop frees
                    // a slot at this node and takes the downstream one that
                    // the planning pass checked. A delay fault holds the link
                    // (and everything serialized behind it) for the extra
                    // cycles, so per-link arrivals stay in FIFO order.
                    self.pool_release(i, vnet);
                    self.pool_acquire(j, vnet);
                    let arrival = now + serialization + self.cfg.switch_latency + delay;
                    let l = SwitchSlab::link(i, dir.index());
                    self.slab.busy_until[l] = now + serialization + delay;
                    self.slab.util[l].add_busy(serialization);
                    self.slab.in_transit[l].push_back(InTransit {
                        arrival,
                        target_slot: target_slot as u32,
                        id,
                    });
                    self.arrivals.schedule(arrival, i, dir.index());
                    self.slab.reserved[target_slot] += 1;
                    self.stats.hops.incr();
                    self.watchdog.record_progress(now);
                    if duplicate {
                        // The spurious copy follows back-to-back on the same
                        // link and consumes real downstream resources — if
                        // the buffer and pool can cover a second packet; an
                        // exhausted target quietly absorbs the fault.
                        if self.slab.has_space(target_slot) && self.pool_can(j, vnet) {
                            let mut d = self.arena.get(id).clone();
                            d.taint = PacketTaint::Duplicate;
                            let dup_id = self.arena.alloc(d);
                            self.pool_acquire(j, vnet);
                            let dup_arrival = arrival + serialization;
                            self.slab.busy_until[l] = now + 2 * serialization;
                            self.slab.util[l].add_busy(serialization);
                            self.slab.in_transit[l].push_back(InTransit {
                                arrival: dup_arrival,
                                target_slot: target_slot as u32,
                                id: dup_id,
                            });
                            self.arrivals.schedule(dup_arrival, i, dir.index());
                            self.slab.reserved[target_slot] += 1;
                            self.in_flight += 1;
                        }
                    }
                }
            }
        }
        let pi = SwitchSlab::port(i, p);
        self.slab.queued[pi] -= 1;
        self.slab.queued_total[i] -= 1;
        if self.slab.queued_total[i] == 0 {
            self.active.remove(i);
        }
        self.slab.rr_next[pi] = ((decision.buffer + 1) % self.slab.buffers_per_port) as u32;
    }

    /// Parallel forward phase: snapshot the serial visit order, build the
    /// adjacency DAG over the active switches, execute it as a wavefront on
    /// the pool, then merge the per-task staged effects in visit order.
    /// Byte-identical to the serial path (see the module docs).
    fn forward_phase_parallel(&mut self, now: Cycle, start_port: usize, pool: &WorkerPool)
    where
        P: Clone + Send + Sync,
    {
        let n = self.slab.num_nodes();
        let rotation = (now as usize) % n.max(1);
        let mut scratch = std::mem::take(&mut self.par_scratch);
        // Snapshot the visit order the serial cursor walk would take.
        scratch.order.clear();
        let mut pos = rotation;
        while let Some(i) = self.active.next_at_or_after(pos) {
            scratch.order.push(i as u32);
            pos = i + 1;
        }
        let mut pos = 0;
        while pos < rotation {
            match self.active.next_at_or_after(pos) {
                Some(i) if i < rotation => {
                    scratch.order.push(i as u32);
                    pos = i + 1;
                }
                _ => break,
            }
        }
        let m = scratch.order.len();
        self.forward_probe.switch_visits += m as u64;
        self.forward_probe.parallel_phases += 1;
        self.forward_probe.parallel_tasks += m as u64;

        // Dependency DAG: an edge between every pair of *active* torus
        // neighbours, directed from the earlier to the later visit
        // position. Duplicate neighbours (2-wide rings fold opposite
        // directions onto one switch) and self-loops (1-wide rings) carry
        // no edge.
        scratch.visit_pos.resize(n, u32::MAX);
        for (t, &i) in scratch.order.iter().enumerate() {
            scratch.visit_pos[i as usize] = t as u32;
        }
        scratch.succ.clear();
        scratch.succ.resize(m, [u32::MAX; 4]);
        scratch.depth.clear();
        scratch.depth.resize(m, 1);
        scratch.indeg.clear();
        scratch.indeg.resize_with(m, || AtomicU32::new(0));
        scratch.ready.clear();
        scratch.ready.resize_with(m, || AtomicU32::new(u32::MAX));
        if scratch.stage.len() < m {
            scratch.stage.resize_with(m, TaskEffects::default);
        }
        let mut max_depth = 1u32;
        for t in 0..m {
            let i = scratch.order[t] as usize;
            let node = NodeId::from(i);
            let mut nbrs = [usize::MAX; 4];
            let mut nn = 0;
            let mut ns = 0;
            for d in LINK_DIRECTIONS {
                let j = self.torus.neighbor(node, d).index();
                if j == i || nbrs[..nn].contains(&j) {
                    continue;
                }
                nbrs[nn] = j;
                nn += 1;
                let pj = scratch.visit_pos[j];
                if pj == u32::MAX {
                    continue;
                }
                if (pj as usize) > t {
                    scratch.succ[t][ns] = pj;
                    ns += 1;
                    *scratch.indeg[pj as usize].get_mut() += 1;
                } else {
                    // Predecessor: its depth is final (pj < t).
                    let dp = scratch.depth[pj as usize] + 1;
                    if dp > scratch.depth[t] {
                        scratch.depth[t] = dp;
                    }
                }
            }
            if scratch.depth[t] > max_depth {
                max_depth = scratch.depth[t];
            }
        }
        self.forward_probe.critical_path_sum += u64::from(max_depth);

        // Seed the wavefront with the dependency-free tasks, in visit order.
        let mut seeded = 0usize;
        for t in 0..m {
            if *scratch.indeg[t].get_mut() == 0 {
                *scratch.ready[seeded].get_mut() = t as u32;
                seeded += 1;
            }
        }
        let head = AtomicUsize::new(seeded);

        let sh = ParShared::<P> {
            queues: self.slab.queues.as_mut_ptr(),
            reserved: self.slab.reserved.as_mut_ptr(),
            cap: self.slab.cap.as_ptr(),
            rr_next: self.slab.rr_next.as_mut_ptr(),
            queued: self.slab.queued.as_mut_ptr(),
            queued_total: self.slab.queued_total.as_mut_ptr(),
            busy_until: self.slab.busy_until.as_mut_ptr(),
            in_transit: self.slab.in_transit.as_mut_ptr(),
            util: self.slab.util.as_mut_ptr(),
            arena: &self.arena,
            eject: self.eject.as_mut_ptr(),
            eject_pending: self.eject_pending.as_mut_ptr(),
            stage: scratch.stage.as_mut_ptr(),
            bpp: self.slab.buffers_per_port,
        };
        let torus = &self.torus;
        let layout = &self.layout;
        let cfg = &self.cfg;
        let routing = self.routing;
        let order = &scratch.order;
        let succ = &scratch.succ;
        let indeg = &scratch.indeg;
        let ready = &scratch.ready;
        let head_ref = &head;
        // Wavefront execution. Worker `slot` runs the `slot`-th task to
        // become runnable: it spins until that slot is published, executes
        // the switch, then retires its DAG successors (the `AcqRel`
        // decrement chains every predecessor's slab writes before the
        // `Release` publish / `Acquire` claim of the successor). Progress is
        // guaranteed: while any task is unexecuted, the one with the lowest
        // visit position among those whose predecessors have all finished
        // has been published, so the number of published tasks always
        // exceeds the number of executed ones — the lowest spinning slot
        // always fills.
        pool.run(m, |slot| {
            let t = loop {
                let t = ready[slot].load(AtomicOrdering::Acquire);
                if t != u32::MAX {
                    break t as usize;
                }
                std::hint::spin_loop();
            };
            let i = order[t] as usize;
            // Disjointness of `stage[t]` across workers follows from slot
            // uniqueness: each task index is published exactly once.
            let fx = unsafe { &mut *sh.stage.add(t) };
            forward_switch_parallel(&sh, torus, layout, cfg, routing, i, now, start_port, fx);
            for &sp in &succ[t] {
                if sp == u32::MAX {
                    continue;
                }
                if indeg[sp as usize].fetch_sub(1, AtomicOrdering::AcqRel) == 1 {
                    let k = head_ref.fetch_add(1, AtomicOrdering::Relaxed);
                    ready[k].store(sp, AtomicOrdering::Release);
                }
            }
        });

        // Merge staged effects in serial visit order: each globally ordered
        // structure observes exactly the sequence the serial path would have
        // produced (the serial path finishes switch t entirely before t+1).
        for t in 0..m {
            let i = scratch.order[t] as usize;
            let fx = &mut scratch.stage[t];
            for &(src, dst, vnet, seq, latency) in &fx.deliveries {
                self.ordering.observe_delivery(src, dst, vnet, seq);
                self.stats.record_delivery(vnet, latency);
            }
            fx.deliveries.clear();
            for &(arrival, si, di) in &fx.arrivals {
                self.arrivals.schedule(arrival, si as usize, di as usize);
            }
            fx.arrivals.clear();
            if fx.ejected > 0 {
                self.eject_active.insert(i);
                self.in_flight = self.in_flight.saturating_sub(fx.ejected as usize);
                fx.ejected = 0;
            }
            for _ in 0..fx.hops {
                self.stats.hops.incr();
            }
            fx.hops = 0;
            if fx.progress {
                self.watchdog.record_progress(now);
                fx.progress = false;
            }
            if fx.deactivate {
                self.active.remove(i);
                fx.deactivate = false;
            }
        }
        // Reset the inverse index for the next phase.
        for &i in &scratch.order {
            scratch.visit_pos[i as usize] = u32::MAX;
        }
        self.par_scratch = scratch;
    }
}

/// One switch's forward work inside a parallel phase: the fault-free,
/// unpooled specialization of `forward_switch` + `plan_port_move` +
/// `apply_move`, operating through the raw-pointer slab view. Slab writes
/// land in place (own rows plus the facing downstream `reserved` columns);
/// schedule-order effects are staged into `fx` for the in-order merge.
///
/// Safety: see [`ParShared`] — the caller's dependency DAG guarantees no
/// two concurrently-running tasks touch overlapping rows.
#[allow(clippy::too_many_arguments)]
fn forward_switch_parallel<P>(
    sh: &ParShared<P>,
    torus: &Torus,
    layout: &BufferLayout,
    cfg: &NetConfig,
    routing: RoutingPolicy,
    i: usize,
    now: Cycle,
    start_port: usize,
    fx: &mut TaskEffects,
) {
    unsafe {
        let node = NodeId::from(i);
        let bpp = sh.bpp;
        let adaptive = routing == RoutingPolicy::Adaptive;
        let occupancy = |s: usize| (*sh.queues.add(s)).len() + *sh.reserved.add(s) as usize;
        let has_space = |s: usize| {
            let c = *sh.cap.add(s);
            c == UNBOUNDED || ((*sh.queues.add(s)).len() as u32) + *sh.reserved.add(s) < c
        };
        let mut congestion: Option<[usize; 4]> = None;
        for pk in 0..ALL_PORTS.len() {
            let p = (start_port + pk) % ALL_PORTS.len();
            let pi = SwitchSlab::port(i, p);
            if *sh.queued.add(pi) == 0 {
                continue;
            }
            let c = if adaptive {
                *congestion.get_or_insert_with(|| {
                    let mut cg = [0usize; 4];
                    for d in LINK_DIRECTIONS {
                        let di = d.index();
                        let l = SwitchSlab::link(i, di);
                        let j = torus.neighbor(node, d).index();
                        let opp = d.opposite().index();
                        let base = SwitchSlab::port(j, opp) * bpp;
                        let port_occ: usize = (base..base + bpp).map(occupancy).sum();
                        cg[di] = (*sh.in_transit.add(l)).len()
                            + usize::from(*sh.busy_until.add(l) > now)
                            + port_occ;
                    }
                    cg
                })
            } else {
                [0usize; 4]
            };
            // Planning pass (read-only), mirroring `plan_port_move` with the
            // pool and fault branches dissolved.
            let incoming = ALL_PORTS[p];
            let rr = *sh.rr_next.add(pi) as usize;
            let mut decision: Option<MoveDecision> = None;
            'plan: for bk in 0..bpp {
                let b = (rr + bk) % bpp;
                let Some(&id) = (*sh.queues.add(pi * bpp + b)).front() else {
                    continue;
                };
                let pkt = (*sh.arena).get(id);
                if pkt.dst == node {
                    let q = layout.ejection_index(pkt.vnet);
                    if !(&(*sh.eject.add(i)))[q].is_full() {
                        decision = Some(MoveDecision {
                            buffer: b,
                            action: MoveAction::Eject { queue: q },
                        });
                        break 'plan;
                    }
                    continue;
                }
                let cands = route_candidates(torus, routing, node, pkt.dst, &c);
                let current_vc = layout.vc_of_buffer(b);
                let serialization = cfg.link_bandwidth.serialization_cycles(pkt.bytes());
                let try_hop = |dir: Direction, use_adaptive: bool| -> Option<MoveDecision> {
                    let di = dir.index();
                    if *sh.busy_until.add(SwitchSlab::link(i, di)) > now {
                        return None;
                    }
                    let crosses = torus.crosses_dateline(node, dir);
                    let j = torus.neighbor(node, dir).index();
                    let opp = dir.opposite().index();
                    let tb = layout.next_buffer_index(
                        pkt.vnet,
                        current_vc,
                        incoming,
                        dir,
                        crosses,
                        use_adaptive,
                    );
                    let target_slot = SwitchSlab::port(j, opp) * bpp + tb;
                    if has_space(target_slot) {
                        Some(MoveDecision {
                            buffer: b,
                            action: MoveAction::Forward {
                                dir,
                                target_slot,
                                serialization,
                            },
                        })
                    } else {
                        None
                    }
                };
                if cands.adaptive {
                    for &dir in &cands.directions {
                        if let Some(mv) = try_hop(dir, true) {
                            decision = Some(mv);
                            break 'plan;
                        }
                    }
                    let dor = torus.dimension_order_direction(node, pkt.dst);
                    if let Some(mv) = try_hop(dor, false) {
                        decision = Some(mv);
                        break 'plan;
                    }
                } else {
                    for &dir in &cands.directions {
                        if dir == Direction::Local {
                            break;
                        }
                        if let Some(mv) = try_hop(dir, false) {
                            decision = Some(mv);
                            break 'plan;
                        }
                    }
                }
            }
            let Some(decision) = decision else {
                continue;
            };
            // Apply pass, mirroring `apply_move`.
            let s = pi * bpp + decision.buffer;
            match decision.action {
                MoveAction::Eject { queue } => {
                    let id = (*sh.queues.add(s))
                        .pop_front()
                        .expect("planned packet vanished");
                    let pkt = (*sh.arena).get(id);
                    fx.deliveries.push((
                        pkt.src,
                        pkt.dst,
                        pkt.vnet,
                        pkt.seq,
                        now.saturating_sub(pkt.injected_at),
                    ));
                    (&mut (*sh.eject.add(i)))[queue]
                        .push(id)
                        .unwrap_or_else(|_| panic!("ejection space was checked during planning"));
                    *sh.eject_pending.add(i) += 1;
                    fx.ejected += 1;
                    fx.progress = true;
                }
                MoveAction::Forward {
                    dir,
                    target_slot,
                    serialization,
                } => {
                    let id = (*sh.queues.add(s))
                        .pop_front()
                        .expect("planned packet vanished");
                    let arrival = now + serialization + cfg.switch_latency;
                    let l = SwitchSlab::link(i, dir.index());
                    *sh.busy_until.add(l) = now + serialization;
                    (*sh.util.add(l)).add_busy(serialization);
                    (*sh.in_transit.add(l)).push_back(InTransit {
                        arrival,
                        target_slot: target_slot as u32,
                        id,
                    });
                    fx.arrivals.push((arrival, i as u32, dir.index() as u8));
                    *sh.reserved.add(target_slot) += 1;
                    fx.hops += 1;
                    fx.progress = true;
                }
            }
            *sh.queued.add(pi) -= 1;
            *sh.queued_total.add(i) -= 1;
            if *sh.queued_total.add(i) == 0 {
                fx.deactivate = true;
            }
            *sh.rr_next.add(pi) = ((decision.buffer + 1) % bpp) as u32;
            congestion = None;
        }
    }
}

impl<P> Network<P> {
    /// Checks the incremental worklist bookkeeping (per-port and per-switch
    /// queued counters, active-set membership, per-node ejection counts,
    /// arena liveness) against a full scan of the underlying queues. Test
    /// support; O(network).
    #[cfg(test)]
    fn assert_worklist_invariants(&self) {
        use crate::switch::PORTS_PER_SWITCH;
        let n = self.slab.num_nodes();
        for i in 0..n {
            let mut total = 0;
            for p in 0..PORTS_PER_SWITCH {
                let scan = self.slab.port_queued_scan(i, p);
                assert_eq!(
                    self.slab.queued[SwitchSlab::port(i, p)] as usize,
                    scan,
                    "port counter at {i}"
                );
                total += scan;
            }
            assert_eq!(
                self.slab.queued_total[i] as usize, total,
                "switch counter at {i}"
            );
            assert_eq!(
                self.active.contains(i),
                total > 0,
                "active-set membership at {i}"
            );
        }
        for (i, queues) in self.eject.iter().enumerate() {
            let scan: usize = queues.iter().map(MsgQueue::len).sum();
            assert_eq!(self.eject_pending[i], scan, "ejection count at node {i}");
            assert_eq!(
                self.eject_active.contains(i),
                scan > 0,
                "eject-active membership at node {i}"
            );
        }
        // Every live arena packet is either queued in the fabric, in transit
        // on a link, or waiting in an ejection queue — and vice versa.
        let fabric: usize = (0..n).map(|i| self.slab.node_occupancy(i)).sum();
        let ejected: usize = self
            .eject
            .iter()
            .flat_map(|qs| qs.iter())
            .map(MsgQueue::len)
            .sum();
        assert_eq!(self.arena.live(), fabric + ejected, "arena live count");
        self.assert_pool_invariants();
    }

    /// Checks the shared-pool slot accounting against a full scan: a node's
    /// held slots per class must equal the packets of that class queued in
    /// its input ports and ejection queues plus the in-flight link packets
    /// that reserved a slot at this node. Under a split budget the switch
    /// pool covers ports + in-transit reservations and the endpoint pool
    /// covers the ejection queues. No-op for unpooled networks.
    #[cfg(test)]
    fn assert_pool_invariants(&self) {
        use crate::switch::PORTS_PER_SWITCH;
        let Some(pools) = &self.pools else { return };
        let n = self.slab.num_nodes();
        let mut switch_side = vec![[0usize; 4]; n];
        let mut eject_side = vec![[0usize; 4]; n];
        for i in 0..n {
            for p in 0..PORTS_PER_SWITCH {
                for b in 0..self.slab.buffers_per_port {
                    for &id in &self.slab.queues[self.slab.slot(i, p, b)] {
                        switch_side[i][self.arena.get(id).vnet.index()] += 1;
                    }
                }
            }
            // In-flight packets hold their downstream slot from forwarding
            // time until delivery.
            for d in LINK_DIRECTIONS {
                let j = self.torus.neighbor(NodeId::from(i), d).index();
                for t in &self.slab.in_transit[SwitchSlab::link(i, d.index())] {
                    switch_side[j][self.arena.get(t.id).vnet.index()] += 1;
                }
            }
        }
        for (i, queues) in self.eject.iter().enumerate() {
            for q in queues {
                for &id in q.iter() {
                    eject_side[i][self.arena.get(id).vnet.index()] += 1;
                }
            }
        }
        let expected_switch: Vec<[usize; 4]> = if self.endpoint_pools.is_some() {
            switch_side
        } else {
            // Unified budget: one pool covers both sides.
            switch_side
                .iter()
                .zip(&eject_side)
                .map(|(s, e)| std::array::from_fn(|v| s[v] + e[v]))
                .collect()
        };
        for (i, pool) in pools.iter().enumerate() {
            for (v, &count) in expected_switch[i].iter().enumerate() {
                assert_eq!(
                    pool.in_use(v),
                    count,
                    "pool slot count at node {i}, class {v}"
                );
            }
        }
        let full_scan = pools.iter().filter(|p| p.occupancy() == p.total()).count();
        assert_eq!(self.full_pools, full_scan, "full-pool counter");
        if let Some(endpoint) = &self.endpoint_pools {
            for (i, pool) in endpoint.iter().enumerate() {
                for (v, &count) in eject_side[i].iter().enumerate() {
                    assert_eq!(
                        pool.in_use(v),
                        count,
                        "endpoint pool slot count at node {i}, class {v}"
                    );
                }
            }
            let full_scan = endpoint
                .iter()
                .filter(|p| p.occupancy() == p.total())
                .count();
            assert_eq!(
                self.full_endpoint_pools, full_scan,
                "full-endpoint-pool counter"
            );
        }
    }
}

#[cfg(test)]
#[path = "network_tests.rs"]
mod tests;
