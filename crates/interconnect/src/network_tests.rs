use super::*;
use specsim_base::{DetRng, LinkBandwidth};

type Net = Network<u64>;

/// Drains one batch from the calendar the way `deliver_phase` does.
fn pop_batch(cal: &mut ArrivalCalendar, now: Cycle) -> Option<Vec<(u32, u8)>> {
    let mut out = Vec::new();
    cal.pop_ripe_into(now, &mut out).then_some(out)
}

#[test]
fn calendar_drains_cycles_in_order_and_batches_in_schedule_order() {
    let mut cal = ArrivalCalendar::default();
    assert!(pop_batch(&mut cal, 0).is_none());
    cal.schedule(5, 1, 0);
    cal.schedule(3, 2, 1);
    cal.schedule(5, 3, 2);
    // Nothing ripe before cycle 3.
    assert!(pop_batch(&mut cal, 2).is_none());
    // Earliest cycle first; within a cycle, schedule order.
    assert_eq!(pop_batch(&mut cal, 10), Some(vec![(2, 1)]));
    assert_eq!(pop_batch(&mut cal, 10), Some(vec![(1, 0), (3, 2)]));
    assert!(pop_batch(&mut cal, 10).is_none());
    // Empty again: the cursor re-anchors and far-future cycles work.
    cal.schedule(11, 4, 3);
    assert!(pop_batch(&mut cal, 10).is_none());
    assert_eq!(pop_batch(&mut cal, 11), Some(vec![(4, 3)]));
}

#[test]
fn calendar_overflow_beyond_the_wheel_horizon_is_preserved_in_order() {
    let mut cal = ArrivalCalendar::default();
    let far = MIN_WHEEL_BUCKETS as Cycle + 500;
    // Scheduled while `next` is 0, so `far` lands in the overflow map...
    cal.schedule(far, 9, 1);
    cal.schedule(2, 1, 0);
    // ...and an in-wheel entry for the same far cycle, scheduled later
    // (after the cursor advanced), must drain *after* the overflow one.
    assert_eq!(pop_batch(&mut cal, 2), Some(vec![(1, 0)]));
    cal.schedule(far, 7, 2);
    assert!(pop_batch(&mut cal, far - 1).is_none());
    assert_eq!(pop_batch(&mut cal, far), Some(vec![(9, 1), (7, 2)]));
    assert!(pop_batch(&mut cal, far + MIN_WHEEL_BUCKETS as Cycle).is_none());
}

#[test]
fn calendar_clear_discards_everything_but_keeps_working() {
    let mut cal = ArrivalCalendar::default();
    cal.schedule(4, 1, 0);
    cal.schedule(MIN_WHEEL_BUCKETS as Cycle + 9, 2, 1);
    cal.clear();
    assert!(pop_batch(&mut cal, MIN_WHEEL_BUCKETS as Cycle * 2).is_none());
    cal.schedule(MIN_WHEEL_BUCKETS as Cycle * 2 + 3, 5, 3);
    assert_eq!(
        pop_batch(&mut cal, MIN_WHEEL_BUCKETS as Cycle * 2 + 3),
        Some(vec![(5, 3)])
    );
}

#[test]
fn calendar_wheel_is_sized_from_the_horizon() {
    // The floor applies when the horizon fits the minimum wheel...
    assert_eq!(
        ArrivalCalendar::with_horizon(0).wheel.len(),
        MIN_WHEEL_BUCKETS
    );
    assert_eq!(
        ArrivalCalendar::with_horizon(1023).wheel.len(),
        MIN_WHEEL_BUCKETS
    );
    // ...and a longer horizon rounds up to the next power of two, so the
    // full common scheduling distance stays on the wheel.
    assert_eq!(ArrivalCalendar::with_horizon(1024).wheel.len(), 2048);
    assert_eq!(ArrivalCalendar::with_horizon(3000).wheel.len(), 4096);
    let cal = ArrivalCalendar::with_horizon(3000);
    assert!(cal.wheel.len().is_power_of_two());
}

#[test]
fn calendar_overflow_heavy_schedule_drains_in_exact_order() {
    // Park far more entries in the overflow map than on the wheel —
    // every distinct due cycle beyond the horizon, interleaved with
    // near-term wheel entries — and require the global drain order to be
    // exactly (due cycle asc, schedule order within a cycle), overflow
    // entries strictly before wheel entries for the same cycle.
    let mut cal = ArrivalCalendar::default();
    let lap = MIN_WHEEL_BUCKETS as Cycle;
    let mut expected: BTreeMap<Cycle, Vec<(u32, u8)>> = BTreeMap::new();
    // 64 overflow cycles, several laps deep, three entries each.
    for k in 0..64u32 {
        let due = lap + 17 + 3 * k as Cycle * 37 % (5 * lap);
        for j in 0..3u8 {
            cal.schedule(due, k as usize, j as usize);
            expected.entry(due).or_default().push((k, j));
        }
    }
    // A handful of near entries that must drain first.
    for k in 0..8u32 {
        let due = 2 + k as Cycle * 5;
        cal.schedule(due, 100 + k as usize, 0);
        expected.entry(due).or_default().push((100 + k, 0));
    }
    // Same-cycle mix: an overflow entry scheduled first must come out
    // before a wheel entry scheduled for the same cycle later.
    let mixed = lap + 17; // already in overflow from the loop above
    let mut now = 0;
    let mut got: Vec<(Cycle, Vec<(u32, u8)>)> = Vec::new();
    while now < 8 * lap {
        now += 1;
        if now == mixed {
            // Close enough now to land on the wheel.
            cal.schedule(mixed, 999, 3);
            expected.entry(mixed).or_default().push((999, 3));
        }
        while let Some(batch) = pop_batch(&mut cal, now) {
            got.push((now, batch));
        }
    }
    let want: Vec<(Cycle, Vec<(u32, u8)>)> = expected.into_iter().collect();
    assert_eq!(got, want);
}

#[test]
fn calendar_matches_a_btreemap_model_under_random_traffic() {
    // Drive the wheel and the old BTreeMap<Cycle, Vec> representation
    // with the same schedule/pop stream and require identical batches.
    let mut cal = ArrivalCalendar::default();
    let mut model: BTreeMap<Cycle, Vec<(u32, u8)>> = BTreeMap::new();
    let mut rng = DetRng::new(71);
    let mut now: Cycle = 0;
    for _ in 0..3_000 {
        now += 1 + rng.next_below(3);
        // Drain everything ripe, comparing batch-for-batch (the model
        // pops its earliest entry exactly like the old implementation).
        loop {
            let expected = match model.first_key_value() {
                Some((&c, _)) if c <= now => model.remove(&c),
                _ => None,
            };
            let got = pop_batch(&mut cal, now);
            assert_eq!(got, expected, "divergence at cycle {now}");
            if got.is_none() {
                break;
            }
        }
        // Schedule a burst of arrivals, occasionally far enough out to
        // exercise the overflow map.
        for _ in 0..rng.next_below(4) {
            let horizon = if rng.next_below(10) == 0 {
                MIN_WHEEL_BUCKETS as Cycle + rng.next_below(400)
            } else {
                1 + rng.next_below(800)
            };
            let arrival = now + horizon;
            let sw = rng.next_below(16) as u32;
            let dir = rng.next_below(4) as u8;
            cal.schedule(arrival, sw as usize, dir as usize);
            model.entry(arrival).or_default().push((sw, dir));
        }
    }
}

fn drain_all_ejections(net: &mut Net) -> Vec<Packet<u64>> {
    let mut out = Vec::new();
    for i in 0..net.num_nodes() {
        while let Some(p) = net.eject_any(NodeId::from(i)) {
            out.push(p);
        }
    }
    out
}

/// Ticks the network (draining every ejection queue each cycle, as live
/// endpoints would) until the fabric is empty or `max_cycles` elapse.
/// Returns the final cycle and every packet delivered while draining.
fn run_until_drained(net: &mut Net, start: Cycle, max_cycles: u64) -> (Cycle, Vec<Packet<u64>>) {
    let mut now = start;
    let mut delivered = drain_all_ejections(net);
    while net.in_flight() > 0 && now < start + max_cycles {
        now += 1;
        net.tick(now);
        delivered.extend(drain_all_ejections(net));
    }
    (now, delivered)
}

#[test]
fn single_message_is_delivered_across_the_torus() {
    let mut net: Net = Network::new(NetConfig::conventional(16, LinkBandwidth::GB_3_2));
    net.inject(
        0,
        NodeId(0),
        NodeId(10),
        VirtualNetwork::Request,
        MessageSize::Control,
        7,
    )
    .unwrap();
    let (end, delivered) = run_until_drained(&mut net, 0, 100_000);
    assert!(net.in_flight() == 0, "message still in flight at {end}");
    assert_eq!(delivered.len(), 1);
    assert_eq!(delivered[0].payload, 7);
    assert_eq!(delivered[0].dst, NodeId(10));
    // Latency must cover at least distance hops of serialization.
    let min = net.torus().distance(NodeId(0), NodeId(10)) as u64
        * LinkBandwidth::GB_3_2.serialization_cycles(8);
    assert!(net.stats().mean_latency() >= min as f64);
}

#[test]
fn self_send_is_delivered_locally() {
    let mut net: Net = Network::new(NetConfig::conventional(16, LinkBandwidth::GB_3_2));
    net.inject(
        0,
        NodeId(5),
        NodeId(5),
        VirtualNetwork::Response,
        MessageSize::Data,
        1,
    )
    .unwrap();
    let (_, delivered) = run_until_drained(&mut net, 0, 1000);
    assert_eq!(delivered.len(), 1);
    assert_eq!(delivered[0].payload, 1);
    assert_eq!(delivered[0].src, NodeId(5));
    assert_eq!(delivered[0].dst, NodeId(5));
}

#[test]
fn static_routing_preserves_point_to_point_order() {
    let mut net: Net = Network::new(NetConfig::full_buffering(
        16,
        LinkBandwidth::MB_400,
        RoutingPolicy::Static,
    ));
    let mut now = 0;
    let mut sent = 0u64;
    // Keep a stream of messages flowing from node 0 to node 10 while
    // other nodes add background traffic.
    let mut rng = DetRng::new(1);
    for _ in 0..400 {
        now += 1;
        if net.can_inject(NodeId(0), VirtualNetwork::ForwardedRequest) && sent < 200 {
            net.inject(
                now,
                NodeId(0),
                NodeId(10),
                VirtualNetwork::ForwardedRequest,
                MessageSize::Control,
                sent,
            )
            .unwrap();
            sent += 1;
        }
        let src = NodeId::from((rng.next_below(16)) as usize);
        let dst = NodeId::from((rng.next_below(16)) as usize);
        if src != dst && net.can_inject(src, VirtualNetwork::Response) {
            let _ = net.inject(
                now,
                src,
                dst,
                VirtualNetwork::Response,
                MessageSize::Data,
                0,
            );
        }
        net.tick(now);
        for i in 0..16 {
            while net.eject_any(NodeId::from(i)).is_some() {}
        }
    }
    let (now, _) = run_until_drained(&mut net, now, 200_000);
    assert_eq!(net.in_flight(), 0, "not drained by {now}");
    assert_eq!(net.ordering().total_reordered(), 0);
    assert!(net.ordering().total_delivered() > 200);
}

#[test]
fn all_messages_are_delivered_under_heavy_random_traffic_with_vcs() {
    let mut cfg = NetConfig::conventional(16, LinkBandwidth::GB_3_2);
    cfg.routing = RoutingPolicy::Adaptive;
    let mut net: Net = Network::new(cfg);
    let mut rng = DetRng::new(99);
    let mut now = 0;
    let mut injected = 0u64;
    for _ in 0..2000 {
        now += 1;
        for _ in 0..4 {
            let src = NodeId::from(rng.next_below(16) as usize);
            let dst = NodeId::from(rng.next_below(16) as usize);
            let vnet = crate::packet::ALL_VIRTUAL_NETWORKS[rng.next_below(4) as usize];
            if net.can_inject(src, vnet) {
                net.inject(now, src, dst, vnet, MessageSize::Control, injected)
                    .unwrap();
                injected += 1;
            }
        }
        net.tick(now);
        // Endpoints drain their ejection queues every cycle.
        for i in 0..16 {
            while net.eject_any(NodeId::from(i)).is_some() {}
        }
    }
    let (now, _) = run_until_drained(&mut net, now, 200_000);
    assert_eq!(net.in_flight(), 0, "VC network wedged at {now}");
    assert!(!net.is_stalled(now));
    assert_eq!(net.stats().delivered.get(), injected);
    assert!(injected > 1000);
}

/// Runs the shared heavy-random-traffic scenario on a 16×16 torus and
/// returns `(delivered payloads in ejection order, injected, stats
/// snapshot)`. `pool` selects the forward-phase executor; the schedule
/// must not depend on it.
fn run_sharding_scenario(
    pool: Option<&specsim_base::WorkerPool>,
) -> (Vec<u64>, u64, crate::stats::NetStats) {
    let mut cfg = NetConfig::conventional(256, LinkBandwidth::GB_3_2);
    cfg.routing = RoutingPolicy::Adaptive;
    let mut net: Net = Network::new(cfg);
    let mut rng = DetRng::new(41);
    let mut now = 0;
    let mut injected = 0u64;
    let mut delivered = Vec::new();
    for _ in 0..600 {
        now += 1;
        for _ in 0..32 {
            let src = NodeId::from(rng.next_below(256) as usize);
            let dst = NodeId::from(rng.next_below(256) as usize);
            let vnet = crate::packet::ALL_VIRTUAL_NETWORKS[rng.next_below(4) as usize];
            if net.can_inject(src, vnet) {
                net.inject(now, src, dst, vnet, MessageSize::Control, injected)
                    .unwrap();
                injected += 1;
            }
        }
        net.tick_with_pool(now, pool);
        delivered.extend(drain_all_ejections(&mut net).into_iter().map(|p| p.payload));
    }
    while net.in_flight() > 0 && now < 100_000 {
        now += 1;
        net.tick_with_pool(now, pool);
        delivered.extend(drain_all_ejections(&mut net).into_iter().map(|p| p.payload));
    }
    assert_eq!(net.in_flight(), 0, "scenario wedged");
    if pool.is_some_and(|p| p.threads() > 1) {
        let probe = net.forward_probe();
        assert!(
            probe.parallel_phases > 0,
            "the sharded forward phase never engaged under heavy traffic"
        );
        assert!(probe.parallel_tasks >= probe.parallel_phases);
    }
    (delivered, injected, net.stats().clone())
}

#[test]
fn sharded_forward_phase_is_byte_identical_to_the_serial_scan() {
    // The engagement pin for the parallel exchange: an explicitly
    // oversubscribed pool drives the sharded wavefront executor with
    // real concurrent threads even on a single-core host (where the
    // engine's own clamped pools fall back to the serial scan), and the
    // delivery sequence must match the serial reference exactly —
    // packet for packet, stat for stat.
    let (serial, injected, serial_stats) = run_sharding_scenario(None);
    assert!(injected > 5_000, "scenario must generate real load");
    let pool = specsim_base::WorkerPool::with_exact_threads(4);
    assert_eq!(pool.threads(), 4, "explicit pool ignores the core clamp");
    let (sharded, injected_sharded, sharded_stats) = run_sharding_scenario(Some(&pool));
    assert_eq!(injected, injected_sharded);
    assert_eq!(serial, sharded, "sharded forwarding reordered deliveries");
    assert_eq!(serial_stats.delivered.get(), sharded_stats.delivered.get());
    assert_eq!(serial_stats.hops.get(), sharded_stats.hops.get());
    assert_eq!(
        serial_stats.latency_sum_per_vnet,
        sharded_stats.latency_sum_per_vnet
    );
}

#[test]
fn rectangular_torus_delivers_all_traffic_and_keeps_counters() {
    // An 8×4 rectangular machine under adaptive VC traffic: everything
    // must be delivered and the worklist bookkeeping must stay exact.
    let mut cfg = NetConfig::conventional(32, LinkBandwidth::GB_3_2);
    cfg.routing = RoutingPolicy::Adaptive;
    let mut net: Net = Network::new(cfg);
    assert_eq!(net.torus().dims(), (8, 4));
    let mut rng = DetRng::new(41);
    let mut now = 0;
    let mut injected = 0u64;
    for _ in 0..1500 {
        now += 1;
        for _ in 0..4 {
            let src = NodeId::from(rng.next_below(32) as usize);
            let dst = NodeId::from(rng.next_below(32) as usize);
            let vnet = crate::packet::ALL_VIRTUAL_NETWORKS[rng.next_below(4) as usize];
            if net.can_inject(src, vnet) {
                net.inject(now, src, dst, vnet, MessageSize::Control, injected)
                    .unwrap();
                injected += 1;
            }
        }
        net.tick(now);
        for i in 0..32 {
            while net.eject_any(NodeId::from(i)).is_some() {}
        }
        net.assert_worklist_invariants();
    }
    let (now, _) = run_until_drained(&mut net, now, 200_000);
    assert_eq!(net.in_flight(), 0, "8x4 network wedged at {now}");
    assert_eq!(net.stats().delivered.get(), injected);
    assert!(injected > 1000);
}

#[test]
fn explicit_torus_dims_override_the_squarest_derivation() {
    let mut cfg = NetConfig::conventional(32, LinkBandwidth::GB_3_2);
    cfg.torus_dims = Some((16, 2));
    let net: Net = Network::new(cfg);
    assert_eq!(net.torus().dims(), (16, 2));
}

#[test]
#[should_panic(expected = "does not cover")]
fn mismatched_torus_dims_panic() {
    let mut cfg = NetConfig::conventional(32, LinkBandwidth::GB_3_2);
    cfg.torus_dims = Some((4, 4));
    let _ = Network::<u64>::new(cfg);
}

#[test]
fn worst_case_buffering_never_rejects_injection() {
    let mut net: Net = Network::new(NetConfig::full_buffering(
        16,
        LinkBandwidth::MB_400,
        RoutingPolicy::Adaptive,
    ));
    let mut rng = DetRng::new(5);
    for now in 1..200u64 {
        for _ in 0..16 {
            let src = NodeId::from(rng.next_below(16) as usize);
            let dst = NodeId::from(rng.next_below(16) as usize);
            net.inject(now, src, dst, VirtualNetwork::Request, MessageSize::Data, 0)
                .unwrap();
        }
        net.tick(now);
    }
    assert_eq!(net.stats().injection_rejects.get(), 0);
}

#[test]
fn undrained_endpoints_back_pressure_and_stall_the_fabric() {
    // Tiny shared buffers and nobody draining ejection queues: the fabric
    // must eventually wedge (endpoint-induced stall), which the watchdog
    // reports. This is the failure mode that, in the full system, the
    // coherence-transaction timeout converts into a recovery.
    let mut net: Net = Network::new(NetConfig::speculative(16, LinkBandwidth::GB_3_2, 2));
    net.set_stall_threshold(2_000);
    let mut rng = DetRng::new(17);
    let mut now = 0;
    for _ in 0..20_000 {
        now += 1;
        let src = NodeId::from(rng.next_below(16) as usize);
        let dst = NodeId::from(rng.next_below(16) as usize);
        if src != dst {
            let _ = net.inject(
                now,
                src,
                dst,
                VirtualNetwork::Request,
                MessageSize::Control,
                0,
            );
        }
        net.tick(now);
        if net.is_stalled(now) {
            break;
        }
    }
    assert!(
        net.is_stalled(now),
        "expected a stall with undrained endpoints"
    );
    assert!(net.in_flight() > 0);
    // Recovery drains everything and clears the stall.
    let dropped = net.drain(now);
    assert!(dropped > 0);
    assert_eq!(net.in_flight(), 0);
    assert!(!net.is_stalled(now + 1));
}

#[test]
fn worklist_counters_stay_consistent_under_traffic() {
    let mut cfg = NetConfig::conventional(16, LinkBandwidth::GB_3_2);
    cfg.routing = RoutingPolicy::Adaptive;
    let mut net: Net = Network::new(cfg);
    let mut rng = DetRng::new(23);
    let mut now = 0;
    for step in 0..600u64 {
        now += 1;
        let src = NodeId::from(rng.next_below(16) as usize);
        let dst = NodeId::from(rng.next_below(16) as usize);
        if src != dst && net.can_inject(src, VirtualNetwork::Request) {
            net.inject(now, src, dst, VirtualNetwork::Request, MessageSize::Data, 0)
                .unwrap();
        }
        net.tick(now);
        // Drain endpoints only intermittently so ejection queues back up.
        if step % 7 == 0 {
            for i in 0..16 {
                while net.eject_any(NodeId::from(i)).is_some() {}
            }
        }
        net.assert_worklist_invariants();
    }
    // Recovery drain must reset every counter and the calendar.
    net.drain(now);
    net.assert_worklist_invariants();
    assert_eq!(net.in_flight(), 0);
    for i in 0..16 {
        assert!(!net.has_ejectable(NodeId::from(i)));
    }
    // The network still works after a drain.
    net.inject(
        now,
        NodeId(0),
        NodeId(9),
        VirtualNetwork::Response,
        MessageSize::Control,
        5,
    )
    .unwrap();
    let (_, delivered) = run_until_drained(&mut net, now, 10_000);
    assert_eq!(delivered.len(), 1);
    net.assert_worklist_invariants();
}

#[test]
fn stall_threshold_comes_from_the_config() {
    let mut cfg = NetConfig::speculative(16, LinkBandwidth::GB_3_2, 2);
    cfg.stall_threshold = 500;
    let mut net: Net = Network::new(cfg);
    net.inject(
        0,
        NodeId(0),
        NodeId(3),
        VirtualNetwork::Request,
        MessageSize::Control,
        0,
    )
    .unwrap();
    // Nothing moves (no ticks): the watchdog trips after the configured
    // threshold rather than the 10_000-cycle default.
    assert!(!net.is_stalled(499));
    assert!(net.is_stalled(500));
}

#[test]
fn routing_policy_can_be_changed_at_runtime() {
    let mut net: Net = Network::new(NetConfig::speculative(16, LinkBandwidth::MB_400, 16));
    assert_eq!(net.routing(), RoutingPolicy::Adaptive);
    net.set_routing(RoutingPolicy::Static);
    assert_eq!(net.routing(), RoutingPolicy::Static);
}

#[test]
fn shared_buffer_injection_back_pressure_reports_rejects() {
    let mut net: Net = Network::new(NetConfig::speculative(4, LinkBandwidth::MB_400, 1));
    // Saturate node 0's injection queue (capacity 1) without ticking.
    assert!(net
        .inject(
            0,
            NodeId(0),
            NodeId(3),
            VirtualNetwork::Request,
            MessageSize::Data,
            0
        )
        .is_ok());
    assert!(!net.can_inject(NodeId(0), VirtualNetwork::Request));
    let err = net.inject(
        0,
        NodeId(0),
        NodeId(3),
        VirtualNetwork::Request,
        MessageSize::Data,
        42,
    );
    assert_eq!(err, Err(InjectError(42)));
    assert_eq!(net.stats().injection_rejects.get(), 1);
}

#[test]
fn hop_count_matches_distance_for_a_single_message() {
    let mut net: Net = Network::new(NetConfig::conventional(16, LinkBandwidth::GB_3_2));
    net.inject(
        0,
        NodeId(0),
        NodeId(15),
        VirtualNetwork::FinalAck,
        MessageSize::Control,
        0,
    )
    .unwrap();
    run_until_drained(&mut net, 0, 100_000);
    assert_eq!(net.in_flight(), 0);
    assert_eq!(
        net.stats().hops.get(),
        net.torus().distance(NodeId(0), NodeId(15)) as u64
    );
}

#[test]
fn shared_pool_network_delivers_traffic_with_exact_slot_accounting() {
    // Random all-class traffic on a pooled network: everything is
    // delivered and the per-node slot accounting (checked against a full
    // scan every cycle, in-flight link reservations included) stays
    // exact.
    let mut net: Net = Network::new(NetConfig::shared_pool(16, LinkBandwidth::GB_3_2, 24));
    assert!(net.is_pooled());
    let mut rng = DetRng::new(61);
    let mut now = 0;
    let mut injected = 0u64;
    for _ in 0..1500 {
        now += 1;
        for _ in 0..3 {
            let src = NodeId::from(rng.next_below(16) as usize);
            let dst = NodeId::from(rng.next_below(16) as usize);
            let vnet = crate::packet::ALL_VIRTUAL_NETWORKS[rng.next_below(4) as usize];
            if net.can_inject(src, vnet) {
                net.inject(now, src, dst, vnet, MessageSize::Control, injected)
                    .unwrap();
                injected += 1;
            }
        }
        net.tick(now);
        for i in 0..16 {
            while net.eject_any(NodeId::from(i)).is_some() {}
        }
        net.assert_worklist_invariants();
    }
    let (now, _) = run_until_drained(&mut net, now, 200_000);
    assert_eq!(net.in_flight(), 0, "pooled network wedged at {now}");
    assert_eq!(net.stats().delivered.get(), injected);
    assert!(injected > 500);
    assert!(net.pool_occupancy_snapshot().iter().all(|&o| o == 0));
    net.assert_worklist_invariants();
}

#[test]
fn pool_back_pressure_rejects_injection_when_slots_run_out() {
    // A 4-slot pool: the node's injection path is cut off by pool
    // exhaustion even though the (unbounded) injection buffer has room.
    let mut net: Net = Network::new(NetConfig::shared_pool(16, LinkBandwidth::MB_400, 4));
    for k in 0..4 {
        assert!(net
            .inject(
                0,
                NodeId(0),
                NodeId(9),
                VirtualNetwork::Request,
                MessageSize::Data,
                k,
            )
            .is_ok());
    }
    assert!(!net.can_inject(NodeId(0), VirtualNetwork::Request));
    assert!(
        !net.can_inject(NodeId(0), VirtualNetwork::Response),
        "every class shares the exhausted pool"
    );
    let err = net.inject(
        0,
        NodeId(0),
        NodeId(9),
        VirtualNetwork::Response,
        MessageSize::Data,
        99,
    );
    assert_eq!(err, Err(InjectError(99)));
    assert_eq!(net.stats().injection_rejects.get(), 1);
    // Other nodes' pools are unaffected.
    assert!(net.can_inject(NodeId(1), VirtualNetwork::Request));
    net.assert_worklist_invariants();
}

#[test]
fn undrained_endpoints_deadlock_an_undersized_pool_and_drain_recovers() {
    // The tentpole failure mode: nobody drains ejection queues, delivered
    // packets pin pool slots, upstream hops back up across nodes and the
    // fabric wedges — the buffer-dependency deadlock of Figures 2–3.
    let mut net: Net = Network::new(NetConfig::shared_pool(16, LinkBandwidth::GB_3_2, 4));
    net.set_stall_threshold(2_000);
    let mut rng = DetRng::new(29);
    let mut now = 0;
    for _ in 0..30_000 {
        now += 1;
        let src = NodeId::from(rng.next_below(16) as usize);
        let dst = NodeId::from(rng.next_below(16) as usize);
        if src != dst {
            let _ = net.inject(
                now,
                src,
                dst,
                VirtualNetwork::Request,
                MessageSize::Control,
                0,
            );
        }
        net.tick(now);
        if net.is_stalled(now) {
            break;
        }
    }
    assert!(net.is_stalled(now), "undersized pool should wedge");
    assert!(net.in_flight() > 0);
    // Recovery drain frees every slot; conservative re-execution reserves
    // one slot per class and the network works again.
    let dropped = net.drain(now);
    assert!(dropped > 0);
    assert!(net.pool_occupancy_snapshot().iter().all(|&o| o == 0));
    assert!(net.set_pool_reservation(1));
    assert_eq!(net.pool_reservation(), Some(1));
    net.inject(
        now,
        NodeId(0),
        NodeId(5),
        VirtualNetwork::Response,
        MessageSize::Control,
        7,
    )
    .unwrap();
    let (_, delivered) = run_until_drained(&mut net, now, 100_000);
    assert_eq!(delivered.len(), 1);
    assert_eq!(delivered[0].payload, 7);
    assert!(net.set_pool_reservation(0), "reservation can be lifted");
    net.assert_worklist_invariants();
}

#[test]
fn unpooled_networks_refuse_pool_reservations() {
    let mut net: Net = Network::new(NetConfig::conventional(16, LinkBandwidth::GB_3_2));
    assert!(!net.is_pooled());
    assert!(!net.set_pool_reservation(2));
    assert_eq!(net.pool_reservation(), None);
    assert!(net.pool_occupancy_snapshot().is_empty());
}

use specsim_base::{FaultEvent, FaultPlan, FaultSite};

/// A director with one `kind` event armed on every outgoing link of
/// `node` (so the test does not depend on the routing decision).
fn link_faults(at: Cycle, node: usize, kind: FaultKind, param: u64) -> FaultDirector {
    let events = (0..4)
        .map(|dir| FaultEvent {
            at,
            site: FaultSite::Link {
                node,
                dir,
                vnet: None,
            },
            kind,
            param,
        })
        .collect();
    FaultDirector::new(FaultPlan { events })
}

fn window_fault(at: Cycle, site: FaultSite, kind: FaultKind, param: u64) -> FaultDirector {
    FaultDirector::new(FaultPlan::single(FaultEvent {
        at,
        site,
        kind,
        param,
    }))
}

/// Like [`run_until_drained`] but ticking through the fault director.
fn run_faulted_until_drained(
    net: &mut Net,
    faults: &mut FaultDirector,
    start: Cycle,
    max_cycles: u64,
) -> (Cycle, Vec<Packet<u64>>) {
    let mut now = start;
    let mut delivered = drain_all_ejections(net);
    while net.in_flight() > 0 && now < start + max_cycles {
        now += 1;
        net.tick_faulted(now, Some(faults));
        net.assert_worklist_invariants();
        delivered.extend(drain_all_ejections(net));
    }
    (now, delivered)
}

fn inject_one(net: &mut Net, now: Cycle, src: usize, dst: usize, payload: u64) {
    net.inject(
        now,
        NodeId::from(src),
        NodeId::from(dst),
        VirtualNetwork::Request,
        MessageSize::Control,
        payload,
    )
    .unwrap();
}

#[test]
fn tick_faulted_without_a_director_matches_tick() {
    // `tick_faulted(now, None)` must be a strict no-op relative to
    // `tick(now)`: same schedule, same deliveries, same stats.
    let cfg = NetConfig::shared_pool(16, LinkBandwidth::GB_3_2, 24);
    let mut a: Net = Network::new(cfg.clone());
    let mut b: Net = Network::new(cfg);
    let mut rng_a = DetRng::new(77);
    let mut rng_b = DetRng::new(77);
    let mut got_a = Vec::new();
    let mut got_b = Vec::new();
    for now in 1..800u64 {
        for (net, rng) in [(&mut a, &mut rng_a), (&mut b, &mut rng_b)] {
            let src = NodeId::from(rng.next_below(16) as usize);
            let dst = NodeId::from(rng.next_below(16) as usize);
            if net.can_inject(src, VirtualNetwork::Response) {
                let _ = net.inject(
                    now,
                    src,
                    dst,
                    VirtualNetwork::Response,
                    MessageSize::Data,
                    now,
                );
            }
        }
        a.tick(now);
        b.tick_faulted(now, None);
        got_a.extend(
            drain_all_ejections(&mut a)
                .into_iter()
                .map(|p| (p.src, p.seq)),
        );
        got_b.extend(
            drain_all_ejections(&mut b)
                .into_iter()
                .map(|p| (p.src, p.seq)),
        );
    }
    assert_eq!(got_a, got_b);
    assert_eq!(a.in_flight(), b.in_flight());
    assert_eq!(a.stats().delivered.get(), b.stats().delivered.get());
}

#[test]
fn drop_fault_loses_exactly_one_message() {
    let mut net: Net = Network::new(NetConfig::shared_pool(16, LinkBandwidth::GB_3_2, 24));
    let mut faults = link_faults(0, 0, FaultKind::Drop, 0);
    inject_one(&mut net, 0, 0, 1, 7);
    let (_, delivered) = run_faulted_until_drained(&mut net, &mut faults, 0, 10_000);
    assert!(delivered.is_empty(), "dropped message must not arrive");
    assert_eq!(net.in_flight(), 0, "drop releases the slot and the count");
    assert_eq!(faults.fires(), 1);
    assert!(net.pool_occupancy_snapshot().iter().all(|&o| o == 0));
    // A later message on the same link sails through (one-shot fault).
    inject_one(&mut net, 100, 0, 1, 8);
    let (_, delivered) = run_faulted_until_drained(&mut net, &mut faults, 100, 10_000);
    assert_eq!(delivered.len(), 1);
    assert_eq!(delivered[0].payload, 8);
    assert_eq!(delivered[0].taint, PacketTaint::Clean);
}

#[test]
fn corrupt_fault_taints_the_delivered_packet() {
    let mut net: Net = Network::new(NetConfig::conventional(16, LinkBandwidth::GB_3_2));
    let mut faults = link_faults(0, 0, FaultKind::Corrupt, 0);
    inject_one(&mut net, 0, 0, 1, 7);
    let (_, delivered) = run_faulted_until_drained(&mut net, &mut faults, 0, 10_000);
    assert_eq!(delivered.len(), 1, "corruption does not lose the message");
    assert_eq!(delivered[0].taint, PacketTaint::Corrupt);
    assert!(delivered[0].taint.is_detectable());
    assert_eq!(faults.fires(), 1);
}

#[test]
fn duplicate_fault_delivers_one_clean_and_one_tainted_copy() {
    let mut net: Net = Network::new(NetConfig::shared_pool(16, LinkBandwidth::GB_3_2, 24));
    let mut faults = link_faults(0, 0, FaultKind::Duplicate, 0);
    inject_one(&mut net, 0, 0, 1, 7);
    let (_, delivered) = run_faulted_until_drained(&mut net, &mut faults, 0, 10_000);
    assert_eq!(delivered.len(), 2);
    let clean: Vec<_> = delivered
        .iter()
        .filter(|p| p.taint == PacketTaint::Clean)
        .collect();
    let dup: Vec<_> = delivered
        .iter()
        .filter(|p| p.taint == PacketTaint::Duplicate)
        .collect();
    assert_eq!((clean.len(), dup.len()), (1, 1));
    assert_eq!(
        clean[0].seq, dup[0].seq,
        "the copy keeps the sequence number"
    );
    assert_eq!(dup[0].payload, 7);
    // An equal (duplicated) sequence number is not an ordering inversion.
    assert_eq!(net.ordering().total_reordered(), 0);
    assert_eq!(net.in_flight(), 0);
    assert!(net.pool_occupancy_snapshot().iter().all(|&o| o == 0));
}

#[test]
fn delay_fault_postpones_delivery_by_its_parameter() {
    let mk = || -> Net { Network::new(NetConfig::conventional(16, LinkBandwidth::GB_3_2)) };
    let mut clean_net = mk();
    inject_one(&mut clean_net, 0, 0, 1, 7);
    let (clean_end, d) = run_until_drained(&mut clean_net, 0, 10_000);
    assert_eq!(d.len(), 1);
    let mut net = mk();
    let mut faults = link_faults(0, 0, FaultKind::Delay, 700);
    inject_one(&mut net, 0, 0, 1, 7);
    let (end, delivered) = run_faulted_until_drained(&mut net, &mut faults, 0, 20_000);
    assert_eq!(delivered.len(), 1);
    assert_eq!(delivered[0].taint, PacketTaint::Clean);
    assert!(
        end >= clean_end + 700,
        "delayed delivery at {end}, clean at {clean_end}"
    );
}

#[test]
fn switch_stall_window_pauses_forwarding_then_releases() {
    let mut net: Net = Network::new(NetConfig::conventional(16, LinkBandwidth::GB_3_2));
    let mut faults = window_fault(
        1,
        FaultSite::Switch { node: 0 },
        FaultKind::SwitchStall,
        600,
    );
    inject_one(&mut net, 0, 0, 1, 7);
    let (end, delivered) = run_faulted_until_drained(&mut net, &mut faults, 0, 20_000);
    assert_eq!(delivered.len(), 1, "stall is temporary — no loss");
    assert!(end >= 601, "nothing forwarded before the window closed");
    assert_eq!(faults.fires(), 1);
}

#[test]
fn switch_blackout_discards_arrivals_at_the_dead_switch() {
    let mut net: Net = Network::new(NetConfig::shared_pool(16, LinkBandwidth::GB_3_2, 24));
    let mut faults = window_fault(
        1,
        FaultSite::Switch { node: 1 },
        FaultKind::SwitchBlackout,
        50_000,
    );
    inject_one(&mut net, 0, 0, 1, 7);
    let (_, delivered) = run_faulted_until_drained(&mut net, &mut faults, 0, 60_000);
    assert!(
        delivered.is_empty(),
        "arrival at a blacked-out switch is lost"
    );
    assert_eq!(net.in_flight(), 0);
    assert!(net.pool_occupancy_snapshot().iter().all(|&o| o == 0));
}

#[test]
fn inbox_drop_window_discards_ejections() {
    let mut net: Net = Network::new(NetConfig::shared_pool(16, LinkBandwidth::GB_3_2, 24));
    let mut faults = window_fault(
        1,
        FaultSite::Inbox { node: 1 },
        FaultKind::InboxDrop,
        50_000,
    );
    inject_one(&mut net, 0, 0, 1, 7);
    let (_, delivered) = run_faulted_until_drained(&mut net, &mut faults, 0, 60_000);
    assert!(delivered.is_empty(), "inbox-dropped message is lost");
    assert_eq!(net.in_flight(), 0);
    assert!(net.pool_occupancy_snapshot().iter().all(|&o| o == 0));
    // After the window a fresh message is delivered normally.
    let mut faults2 = FaultDirector::new(FaultPlan::none());
    inject_one(&mut net, 60_001, 0, 1, 9);
    let (_, delivered) = run_faulted_until_drained(&mut net, &mut faults2, 60_001, 10_000);
    assert_eq!(delivered.len(), 1);
}

#[test]
fn split_pool_network_delivers_with_exact_accounting() {
    // The endpoint/switch split budget under random all-class traffic:
    // everything is delivered and both sides' slot accounting (checked
    // against full scans every cycle) stays exact.
    let mut net: Net = Network::new(NetConfig::shared_pool_split(
        16,
        LinkBandwidth::GB_3_2,
        18,
        6,
    ));
    assert!(net.is_pooled());
    assert!(net.is_pool_split());
    let mut rng = DetRng::new(61);
    let mut now = 0;
    let mut injected = 0u64;
    for _ in 0..1500 {
        now += 1;
        for _ in 0..3 {
            let src = NodeId::from(rng.next_below(16) as usize);
            let dst = NodeId::from(rng.next_below(16) as usize);
            let vnet = crate::packet::ALL_VIRTUAL_NETWORKS[rng.next_below(4) as usize];
            if net.can_inject(src, vnet) {
                net.inject(now, src, dst, vnet, MessageSize::Control, injected)
                    .unwrap();
                injected += 1;
            }
        }
        net.tick(now);
        for i in 0..16 {
            while net.eject_any(NodeId::from(i)).is_some() {}
        }
        net.assert_worklist_invariants();
    }
    let (now, _) = run_until_drained(&mut net, now, 200_000);
    assert_eq!(net.in_flight(), 0, "split-pool network wedged at {now}");
    assert_eq!(net.stats().delivered.get(), injected);
    assert!(injected > 500);
    assert!(net.pool_occupancy_snapshot().iter().all(|&o| o == 0));
    assert!(net
        .endpoint_pool_occupancy_snapshot()
        .iter()
        .all(|&o| o == 0));
    net.assert_worklist_invariants();
}

#[test]
fn split_pool_endpoint_budget_gates_ejection_but_not_the_fabric() {
    // One endpoint slot at every node: with nobody draining, at most one
    // delivered message can hold node 1's endpoint budget; the others
    // wait *in the fabric* (their switch-side slots intact) instead of
    // overrunning the ejection queue. Draining releases the endpoint
    // slot and the next message comes through.
    let mut net: Net = Network::new(NetConfig::shared_pool_split(
        16,
        LinkBandwidth::MB_400,
        12,
        1,
    ));
    inject_one(&mut net, 0, 0, 1, 10);
    inject_one(&mut net, 0, 2, 1, 11);
    inject_one(&mut net, 0, 5, 1, 12);
    let mut now = 0;
    for _ in 0..5_000 {
        now += 1;
        net.tick(now);
        net.assert_worklist_invariants();
    }
    assert!(net.has_ejectable(NodeId(1)));
    assert!(net.has_exhausted_pool(), "endpoint budget is pinned");
    let mut got = Vec::new();
    for _ in 0..3 {
        let p = net.eject_any(NodeId(1));
        assert!(p.is_some(), "one message per endpoint slot");
        got.push(p.unwrap().payload);
        assert!(net.eject_any(NodeId(1)).is_none(), "budget gates the rest");
        for _ in 0..5_000 {
            now += 1;
            net.tick(now);
            net.assert_worklist_invariants();
        }
    }
    got.sort_unstable();
    assert_eq!(got, vec![10, 11, 12]);
    assert_eq!(net.in_flight(), 0);
    assert!(net
        .endpoint_pool_occupancy_snapshot()
        .iter()
        .all(|&o| o == 0));
}

#[test]
fn mean_link_utilization_is_nonzero_under_traffic_and_bounded() {
    let mut net: Net = Network::new(NetConfig::conventional(16, LinkBandwidth::MB_400));
    let mut rng = DetRng::new(2);
    let mut now = 0;
    for _ in 0..500 {
        now += 1;
        let src = NodeId::from(rng.next_below(16) as usize);
        let dst = NodeId::from(rng.next_below(16) as usize);
        if src != dst && net.can_inject(src, VirtualNetwork::Response) {
            let _ = net.inject(
                now,
                src,
                dst,
                VirtualNetwork::Response,
                MessageSize::Data,
                0,
            );
        }
        net.tick(now);
        for i in 0..16 {
            while net.eject_any(NodeId::from(i)).is_some() {}
        }
    }
    let u = net.mean_link_utilization(now);
    assert!(u > 0.0 && u <= 1.0, "utilization {u}");
}
