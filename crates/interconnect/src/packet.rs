//! Packets and virtual networks.
//!
//! The directory protocol of Section 3.1 uses four classes of messages —
//! Request, ForwardedRequest, Response and FinalAck — and "each class of
//! messages travels on a logically separate interconnection network (i.e.,
//! virtual network)". Virtual networks exist to break endpoint deadlock: a
//! node's incoming queue can never fill up with requests alone, because
//! buffer space is reserved per class.

use specsim_base::{Cycle, MessageSize, NodeId};

/// The four virtual networks (message classes) of the directory protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VirtualNetwork {
    /// Processor → directory requests (RequestReadOnly, RequestReadWrite,
    /// Writeback).
    Request,
    /// Directory → processor forwarded requests (Forwarded-RequestReadOnly,
    /// Forwarded-RequestReadWrite, Invalidation, Writeback-Ack). This is the
    /// only virtual network whose point-to-point ordering matters for
    /// correctness in the speculatively simplified protocol.
    ForwardedRequest,
    /// Data, Ack and Nack responses sent to the requesting processor.
    Response,
    /// Processor → directory final acknowledgments used to close transactions
    /// and coordinate SafetyNet checkpoints.
    FinalAck,
}

/// All virtual networks, in a fixed order (used for per-VN statistics and for
/// iterating buffers).
pub const ALL_VIRTUAL_NETWORKS: [VirtualNetwork; 4] = [
    VirtualNetwork::Request,
    VirtualNetwork::ForwardedRequest,
    VirtualNetwork::Response,
    VirtualNetwork::FinalAck,
];

impl VirtualNetwork {
    /// Dense index of this virtual network, `0..4`.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            VirtualNetwork::Request => 0,
            VirtualNetwork::ForwardedRequest => 1,
            VirtualNetwork::Response => 2,
            VirtualNetwork::FinalAck => 3,
        }
    }

    /// Short label for statistics output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            VirtualNetwork::Request => "Request",
            VirtualNetwork::ForwardedRequest => "FwdRequest",
            VirtualNetwork::Response => "Response",
            VirtualNetwork::FinalAck => "FinalAck",
        }
    }
}

/// Integrity mark carried by a packet, set by the fault injector and checked
/// by the receiving endpoint (the "checksum/sequence-number model"): real
/// NICs detect a corrupted payload by checksum and a duplicated message by
/// its sequence number. Clean packets are untouched; tainted packets are
/// discarded at ingest and reported as transient-fault evidence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PacketTaint {
    /// An ordinary, uncorrupted message (the default).
    #[default]
    Clean,
    /// The payload was corrupted in flight; the endpoint checksum fails.
    Corrupt,
    /// The message is a spurious duplicate; the endpoint sequence check
    /// rejects it.
    Duplicate,
}

impl PacketTaint {
    /// True when the endpoint's integrity checks will reject this packet.
    #[must_use]
    pub fn is_detectable(self) -> bool {
        self != PacketTaint::Clean
    }
}

/// A message travelling through the network, wrapping a protocol payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet<P> {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Message class / virtual network.
    pub vnet: VirtualNetwork,
    /// Whether the message carries a data block (affects serialization time).
    pub size: MessageSize,
    /// Per-(src, dst, vnet) sequence number stamped at injection; used by the
    /// ordering tracker to detect point-to-point order violations.
    pub seq: u64,
    /// Cycle at which the message entered the source injection queue.
    pub injected_at: Cycle,
    /// Integrity mark set by the fault injector ([`PacketTaint::Clean`] on
    /// every normally injected packet).
    pub taint: PacketTaint,
    /// The protocol-level payload.
    pub payload: P,
}

impl<P> Packet<P> {
    /// Number of bytes this packet occupies on a link.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.size.bytes()
    }
}

/// Dense-id arena for packets travelling through a
/// [`crate::network::Network`].
///
/// The switch slab's queues and link pipelines store `u32` packet ids; the
/// packets themselves live here, in one contiguous allocation. A packet is
/// allocated at injection, moves between queues by id (no payload copies per
/// hop), and is taken out when the endpoint drains it (or a fault/recovery
/// drops it). Freed slots are recycled LIFO, so id assignment is a pure
/// function of the alloc/free history — deterministic whenever the schedule
/// is, and never itself an input to the schedule.
#[derive(Debug, Clone)]
pub struct PacketArena<P> {
    slots: Vec<Option<Packet<P>>>,
    free: Vec<u32>,
}

impl<P> Default for PacketArena<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> PacketArena<P> {
    /// Creates an empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Stores `packet` and returns its dense id.
    pub fn alloc(&mut self, packet: Packet<P>) -> u32 {
        match self.free.pop() {
            Some(id) => {
                debug_assert!(self.slots[id as usize].is_none());
                self.slots[id as usize] = Some(packet);
                id
            }
            None => {
                let id = u32::try_from(self.slots.len()).expect("packet arena overflow");
                self.slots.push(Some(packet));
                id
            }
        }
    }

    /// Borrows the packet behind a live id.
    ///
    /// # Panics
    /// Panics if `id` was already freed (a dangling id is a flow-control
    /// bug, never a recoverable condition).
    #[must_use]
    pub fn get(&self, id: u32) -> &Packet<P> {
        self.slots[id as usize]
            .as_ref()
            .expect("packet arena id was already freed")
    }

    /// Mutably borrows the packet behind a live id (fault tainting).
    ///
    /// # Panics
    /// Panics if `id` was already freed.
    pub fn get_mut(&mut self, id: u32) -> &mut Packet<P> {
        self.slots[id as usize]
            .as_mut()
            .expect("packet arena id was already freed")
    }

    /// Removes and returns the packet behind a live id, recycling the slot.
    ///
    /// # Panics
    /// Panics if `id` was already freed.
    pub fn take(&mut self, id: u32) -> Packet<P> {
        let p = self.slots[id as usize]
            .take()
            .expect("packet arena id was already freed");
        self.free.push(id);
        p
    }

    /// Number of live packets.
    #[must_use]
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Drops every live packet and resets id assignment (recovery drain).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vnet_indices_are_dense_and_distinct() {
        let mut seen = [false; 4];
        for vn in ALL_VIRTUAL_NETWORKS {
            assert!(!seen[vn.index()]);
            seen[vn.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn packet_size_follows_message_class() {
        let p = Packet {
            src: NodeId(0),
            dst: NodeId(1),
            vnet: VirtualNetwork::Response,
            size: MessageSize::Data,
            seq: 0,
            injected_at: 0,
            taint: PacketTaint::default(),
            payload: (),
        };
        assert_eq!(p.bytes(), 72);
        assert!(!p.taint.is_detectable());
        assert!(PacketTaint::Corrupt.is_detectable());
        assert!(PacketTaint::Duplicate.is_detectable());
    }

    #[test]
    fn arena_recycles_ids_deterministically() {
        let mut arena: PacketArena<u32> = PacketArena::new();
        let mk = |n: u32| Packet {
            src: NodeId(0),
            dst: NodeId(1),
            vnet: VirtualNetwork::Request,
            size: MessageSize::Control,
            seq: u64::from(n),
            injected_at: 0,
            taint: PacketTaint::Clean,
            payload: n,
        };
        let a = arena.alloc(mk(0));
        let b = arena.alloc(mk(1));
        assert_eq!((a, b), (0, 1));
        assert_eq!(arena.live(), 2);
        assert_eq!(arena.get(a).payload, 0);
        assert_eq!(arena.take(a).payload, 0);
        // LIFO recycling: the freed slot is reused first.
        assert_eq!(arena.alloc(mk(2)), a);
        assert_eq!(arena.take(b).payload, 1);
        assert_eq!(arena.take(a).payload, 2);
        assert_eq!(arena.live(), 0);
        arena.clear();
        assert_eq!(arena.alloc(mk(3)), 0);
    }

    #[test]
    #[should_panic(expected = "packet arena id was already freed")]
    fn arena_take_of_freed_id_panics() {
        let mut arena: PacketArena<()> = PacketArena::new();
        let id = arena.alloc(Packet {
            src: NodeId(0),
            dst: NodeId(0),
            vnet: VirtualNetwork::Request,
            size: MessageSize::Control,
            seq: 0,
            injected_at: 0,
            taint: PacketTaint::Clean,
            payload: (),
        });
        arena.take(id);
        arena.take(id);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            ALL_VIRTUAL_NETWORKS.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
