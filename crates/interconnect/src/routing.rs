//! Routing policies.
//!
//! * **Static dimension-order routing** sends a packet fully along the X ring
//!   and then along the Y ring. Every (source, destination) pair uses exactly
//!   one path, so point-to-point ordering is preserved (messages cannot
//!   overtake each other except within a single FIFO buffer, which preserves
//!   order).
//! * **Minimal adaptive routing** (Section 3.1) lets a packet choose, at each
//!   hop, among the productive directions "based on outgoing queue lengths in
//!   each direction". Two packets between the same pair of nodes can take
//!   different paths and arrive out of order (Figure 1).

use specsim_base::{NodeId, RoutingPolicy};

use crate::topology::{DirList, Direction, Torus};

/// An ordered list of candidate output directions for one packet at one
/// switch, most preferred first. Held inline ([`DirList`]) so routing a
/// packet never heap-allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteCandidates {
    /// Candidate directions in preference order.
    pub directions: DirList,
    /// Whether the preferred candidates may use the fully adaptive virtual
    /// channel (true only under adaptive routing).
    pub adaptive: bool,
}

/// Computes the candidate output directions for a packet at `current` headed
/// to `dst`.
///
/// `congestion` supplies the congestion metric for each direction (indexed by
/// [`Direction::index`]); it is only consulted under adaptive routing. Lower
/// is better. Ties are broken in favour of the dimension-order direction, and
/// then by direction index, so the result is deterministic.
#[must_use]
pub fn route_candidates(
    torus: &Torus,
    policy: RoutingPolicy,
    current: NodeId,
    dst: NodeId,
    congestion: &[usize; 4],
) -> RouteCandidates {
    if current == dst {
        return RouteCandidates {
            directions: DirList::of(Direction::Local),
            adaptive: false,
        };
    }
    let dor = torus.dimension_order_direction(current, dst);
    match policy {
        RoutingPolicy::Static => RouteCandidates {
            directions: DirList::of(dor),
            adaptive: false,
        },
        RoutingPolicy::Adaptive => {
            let mut productive = torus.productive_directions(current, dst);
            productive.sort_by_key(|&d| {
                (
                    congestion[d.index()],
                    usize::from(d != dor), // prefer the DOR direction on ties
                    d.index(),
                )
            });
            RouteCandidates {
                directions: productive,
                adaptive: true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t4() -> Torus {
        Torus::new(16)
    }

    #[test]
    fn static_routing_returns_exactly_the_dor_direction() {
        let t = t4();
        // Node 0 (0,0) to node 10 (2,2): DOR goes East first.
        let c = route_candidates(&t, RoutingPolicy::Static, NodeId(0), NodeId(10), &[0; 4]);
        assert_eq!(c.directions.as_slice(), [Direction::East]);
        assert!(!c.adaptive);
    }

    #[test]
    fn adaptive_routing_prefers_less_congested_productive_direction() {
        let t = t4();
        // Node 0 (0,0) to node 5 (1,1): productive directions East and North.
        let mut congestion = [0usize; 4];
        congestion[Direction::East.index()] = 10;
        congestion[Direction::North.index()] = 1;
        let c = route_candidates(
            &t,
            RoutingPolicy::Adaptive,
            NodeId(0),
            NodeId(5),
            &congestion,
        );
        assert_eq!(c.directions[0], Direction::North);
        assert_eq!(c.directions.len(), 2);
        assert!(c.adaptive);
    }

    #[test]
    fn adaptive_routing_breaks_ties_towards_dimension_order() {
        let t = t4();
        let c = route_candidates(&t, RoutingPolicy::Adaptive, NodeId(0), NodeId(5), &[3; 4]);
        // DOR from (0,0) to (1,1) is East; equal congestion should keep East first.
        assert_eq!(c.directions[0], Direction::East);
    }

    #[test]
    fn arrived_packet_routes_to_local() {
        let t = t4();
        for policy in [RoutingPolicy::Static, RoutingPolicy::Adaptive] {
            let c = route_candidates(&t, policy, NodeId(7), NodeId(7), &[0; 4]);
            assert_eq!(c.directions.as_slice(), [Direction::Local]);
        }
    }

    #[test]
    fn rectangular_torus_routes_respect_per_axis_rings() {
        // 8×2: node 0 at (0,0), node 12 at (4,1).
        let t = Torus::rectangular(8, 2);
        // DOR travels X first: 4 hops East (tie on the half-ring goes
        // positive), then one hop on the length-2 Y ring.
        let c = route_candidates(&t, RoutingPolicy::Static, NodeId(0), NodeId(12), &[0; 4]);
        assert_eq!(c.directions.as_slice(), [Direction::East]);
        // Adaptive offers both productive axes.
        let c = route_candidates(&t, RoutingPolicy::Adaptive, NodeId(0), NodeId(12), &[0; 4]);
        assert_eq!(c.directions.len(), 2);
        for d in &c.directions {
            let next = t.neighbor(NodeId(0), *d);
            assert_eq!(
                t.distance(next, NodeId(12)),
                t.distance(NodeId(0), NodeId(12)) - 1
            );
        }
    }

    #[test]
    fn adaptive_candidates_are_all_productive() {
        let t = t4();
        for from in 0..16usize {
            for to in 0..16usize {
                if from == to {
                    continue;
                }
                let c = route_candidates(
                    &t,
                    RoutingPolicy::Adaptive,
                    NodeId::from(from),
                    NodeId::from(to),
                    &[0; 4],
                );
                for d in &c.directions {
                    let next = t.neighbor(NodeId::from(from), *d);
                    assert_eq!(
                        t.distance(next, NodeId::from(to)),
                        t.distance(NodeId::from(from), NodeId::from(to)) - 1,
                        "candidate {d:?} from {from} to {to} is not productive"
                    );
                }
            }
        }
    }
}
