//! Switch state as one flat struct-of-arrays slab.
//!
//! Earlier revisions kept a `Vec<Switch>` of nested structs (ports holding
//! `Vec`s of buffers holding packet queues). The per-cycle forward kernel
//! walks per-port occupancy counters, credits and queue heads for *many*
//! switches; with nested structs every hop is a pointer chase into a
//! different allocation. This module flattens all of that into contiguous
//! arrays indexed by dense `(switch, port, buffer)` / `(switch, link)`
//! coordinates — the packet payloads themselves live in a
//! [`crate::packet::PacketArena`] and the queues hold dense `u32` ids — so
//! the hot loop reads cache-friendly rows, and the parallel forward phase
//! can hand disjoint index ranges to worker threads.
//!
//! The forwarding logic that moves packets *between* switches still lives in
//! [`crate::network`]; this module owns the layout and the local
//! bookkeeping (credit-exact reservations, round-robin pointers, incremental
//! occupancy counters).

use std::collections::VecDeque;

use specsim_base::{Cycle, UtilizationTracker};

use crate::config::BufferLayout;
use crate::topology::Direction;

/// Ports per switch: the four link directions plus the local injection port.
pub(crate) const PORTS_PER_SWITCH: usize = 5;

/// Outgoing unidirectional links per switch (no local link).
pub(crate) const LINKS_PER_SWITCH: usize = 4;

/// Capacity sentinel marking an unbounded buffer slot.
pub(crate) const UNBOUNDED: u32 = u32::MAX;

/// A message in flight on a link, due to arrive at `arrival`. The payload
/// stays in the packet arena; only its dense id travels.
#[derive(Debug, Clone)]
pub(crate) struct InTransit {
    pub arrival: Cycle,
    /// Global buffer-slot index (see [`SwitchSlab::slot`]) the packet's
    /// flow-control reservation points at.
    pub target_slot: u32,
    /// Packet id in the network's arena.
    pub id: u32,
}

/// All per-switch state of the torus, flattened into parallel arrays.
///
/// Index spaces:
/// * **buffer slots** — `(switch * 5 + port) * buffers_per_port + buffer`
///   for `queues`, `reserved` and `cap`;
/// * **ports** — `switch * 5 + port` for `rr_next` and `queued`;
/// * **links** — `switch * 4 + direction` for `busy_until`, `in_transit`
///   and `util`;
/// * **switches** — plain node index for `queued_total`.
///
/// `reserved` counts messages currently in flight on the upstream link that
/// will land in a slot; reserving at forwarding time is what makes the flow
/// control credit-exact. `queued` / `queued_total` mirror the queue lengths
/// incrementally and feed the active-switch worklist, so the per-cycle
/// kernel never scans buffers of idle ports.
#[derive(Debug, Clone)]
pub(crate) struct SwitchSlab {
    pub buffers_per_port: usize,
    pub queues: Vec<VecDeque<u32>>,
    pub reserved: Vec<u32>,
    pub cap: Vec<u32>,
    pub rr_next: Vec<u32>,
    pub queued: Vec<u32>,
    pub queued_total: Vec<u32>,
    pub busy_until: Vec<Cycle>,
    pub in_transit: Vec<VecDeque<InTransit>>,
    pub util: Vec<UtilizationTracker>,
}

impl SwitchSlab {
    /// Builds the slab with the layout's per-buffer capacities. With
    /// `pooled` set (shared-pool buffer policy) the buffer *structure* is
    /// kept but every individual capacity is unbounded — the node's shared
    /// slot pool, enforced by [`crate::network::Network`], is the only
    /// bound. The local (injection) port honours the injection-queue depth
    /// rather than the per-VC depth.
    pub fn new(num_nodes: usize, layout: &BufferLayout, pooled: bool) -> Self {
        let bpp = layout.buffers_per_port();
        let to_cap = |c: Option<usize>| c.map_or(UNBOUNDED, |c| c as u32);
        let link_cap = if pooled {
            UNBOUNDED
        } else {
            to_cap(layout.buffer_capacity())
        };
        let injection_cap = if pooled {
            UNBOUNDED
        } else {
            to_cap(layout.injection_capacity())
        };
        let slots = num_nodes * PORTS_PER_SWITCH * bpp;
        let mut cap = vec![link_cap; slots];
        for node in 0..num_nodes {
            for b in 0..bpp {
                cap[(node * PORTS_PER_SWITCH + Direction::Local.index()) * bpp + b] = injection_cap;
            }
        }
        Self {
            buffers_per_port: bpp,
            queues: vec![VecDeque::new(); slots],
            reserved: vec![0; slots],
            cap,
            rr_next: vec![0; num_nodes * PORTS_PER_SWITCH],
            queued: vec![0; num_nodes * PORTS_PER_SWITCH],
            queued_total: vec![0; num_nodes],
            busy_until: vec![0; num_nodes * LINKS_PER_SWITCH],
            in_transit: vec![VecDeque::new(); num_nodes * LINKS_PER_SWITCH],
            util: vec![UtilizationTracker::new(); num_nodes * LINKS_PER_SWITCH],
        }
    }

    /// Number of switches in the slab.
    pub fn num_nodes(&self) -> usize {
        self.queued_total.len()
    }

    /// Global buffer-slot index of `(node, port, buffer)`.
    #[inline]
    pub fn slot(&self, node: usize, port: usize, buffer: usize) -> usize {
        (node * PORTS_PER_SWITCH + port) * self.buffers_per_port + buffer
    }

    /// Dense port index of `(node, port)`.
    #[inline]
    pub fn port(node: usize, port: usize) -> usize {
        node * PORTS_PER_SWITCH + port
    }

    /// Dense link index of `(node, direction)`.
    #[inline]
    pub fn link(node: usize, dir: usize) -> usize {
        node * LINKS_PER_SWITCH + dir
    }

    /// True when a new message may be reserved into buffer slot `s`
    /// (queued + in-flight reservations stay under the capacity).
    #[inline]
    pub fn has_space(&self, s: usize) -> bool {
        self.cap[s] == UNBOUNDED || (self.queues[s].len() as u32) + self.reserved[s] < self.cap[s]
    }

    /// Messages either queued or in flight towards buffer slot `s`.
    #[inline]
    pub fn slot_occupancy(&self, s: usize) -> usize {
        self.queues[s].len() + self.reserved[s] as usize
    }

    /// Appends `id` to buffer slot `s`, refusing when the queue itself is at
    /// capacity (reservations do not block an already-reserved push).
    #[inline]
    pub fn push(&mut self, s: usize, id: u32) -> Result<(), ()> {
        if self.cap[s] != UNBOUNDED && self.queues[s].len() as u32 >= self.cap[s] {
            return Err(());
        }
        self.queues[s].push_back(id);
        Ok(())
    }

    /// Accepts a message whose slot was previously reserved.
    pub fn accept_reserved(&mut self, s: usize, id: u32) {
        debug_assert!(self.reserved[s] > 0, "delivery without reservation");
        self.reserved[s] = self.reserved[s].saturating_sub(1);
        // A reserved slot is guaranteed to exist; an unbounded queue always
        // accepts. Losing a packet here would be a flow-control bug.
        self.push(s, id)
            .unwrap_or_else(|()| panic!("reserved buffer slot was not available"));
    }

    /// Gives back the reservation of a message that was lost on its link
    /// (fault paths only).
    pub fn release_reservation(&mut self, s: usize) {
        debug_assert!(self.reserved[s] > 0, "blackout drop without a reservation");
        self.reserved[s] = self.reserved[s].saturating_sub(1);
    }

    /// True when link `l` can start serializing a new message at `now`.
    #[inline]
    pub fn link_is_free(&self, l: usize, now: Cycle) -> bool {
        self.busy_until[l] <= now
    }

    /// Total messages queued or in flight towards `(node, port)` across all
    /// its buffers.
    pub fn port_occupancy(&self, node: usize, port: usize) -> usize {
        let base = self.slot(node, port, 0);
        (base..base + self.buffers_per_port)
            .map(|s| self.slot_occupancy(s))
            .sum()
    }

    /// Messages actually queued at `(node, port)` (excluding reservations),
    /// recomputed from the queues (diagnostic ground truth for `queued`).
    pub fn port_queued_scan(&self, node: usize, port: usize) -> usize {
        let base = self.slot(node, port, 0);
        (base..base + self.buffers_per_port)
            .map(|s| self.queues[s].len())
            .sum()
    }

    /// Total messages queued or in flight at switch `node` (all ports and
    /// links), recomputed from the underlying queues.
    pub fn node_occupancy(&self, node: usize) -> usize {
        let queued: usize = (0..PORTS_PER_SWITCH)
            .map(|p| self.port_queued_scan(node, p))
            .sum();
        let transit: usize = (0..LINKS_PER_SWITCH)
            .map(|d| self.in_transit[Self::link(node, d)].len())
            .sum();
        queued + transit
    }

    /// Drops every queued and in-flight message of every switch, pushing the
    /// freed packet ids into `dropped` (recovery drain).
    pub fn clear_all(&mut self, dropped: &mut Vec<u32>) {
        for q in &mut self.queues {
            dropped.extend(q.drain(..));
        }
        self.reserved.fill(0);
        self.queued.fill(0);
        self.queued_total.fill(0);
        for t in &mut self.in_transit {
            dropped.extend(t.drain(..).map(|e| e.id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn shared_layout(depth: usize) -> BufferLayout {
        BufferLayout::Shared {
            depth,
            ejection_depth: depth,
            injection_depth: depth,
        }
    }

    #[test]
    fn reservation_consumes_space_before_arrival() {
        let mut slab = SwitchSlab::new(1, &shared_layout(2), false);
        let s = slab.slot(0, 0, 0);
        assert!(slab.has_space(s));
        slab.reserved[s] += 1;
        slab.reserved[s] += 1;
        assert!(!slab.has_space(s));
        assert_eq!(slab.slot_occupancy(s), 2);
        slab.accept_reserved(s, 7);
        assert_eq!(slab.queues[s].len(), 1);
        assert_eq!(slab.reserved[s], 1);
        assert!(!slab.has_space(s));
    }

    #[test]
    fn unbounded_buffer_always_has_space() {
        let mut slab = SwitchSlab::new(1, &shared_layout(1), true);
        let s = slab.slot(0, 0, 0);
        for i in 0..1000 {
            slab.reserved[s] += 1;
            slab.accept_reserved(s, i);
        }
        assert!(slab.has_space(s));
        assert_eq!(slab.slot_occupancy(s), 1000);
    }

    #[test]
    fn pooled_slab_buffers_are_individually_unbounded() {
        let slab = SwitchSlab::new(4, &shared_layout(1), true);
        assert!(
            slab.cap.iter().all(|&c| c == UNBOUNDED),
            "pooled buffers must be unbounded"
        );
    }

    #[test]
    fn injection_port_gets_the_injection_depth() {
        let layout = BufferLayout::Shared {
            depth: 2,
            ejection_depth: 2,
            injection_depth: 9,
        };
        let slab = SwitchSlab::new(3, &layout, false);
        for node in 0..3 {
            for p in 0..PORTS_PER_SWITCH {
                let expect = if p == Direction::Local.index() { 9 } else { 2 };
                assert_eq!(slab.cap[slab.slot(node, p, 0)], expect);
            }
        }
    }

    #[test]
    fn slab_occupancy_and_clear() {
        let mut slab = SwitchSlab::new(4, &shared_layout(4), false);
        let s1 = slab.slot(3, 0, 0);
        let s2 = slab.slot(3, 4, 0);
        slab.push(s1, 1).unwrap();
        slab.push(s2, 2).unwrap();
        slab.in_transit[SwitchSlab::link(3, 0)].push_back(InTransit {
            arrival: 10,
            target_slot: 0,
            id: 3,
        });
        assert_eq!(slab.node_occupancy(3), 3);
        assert_eq!(slab.node_occupancy(0), 0);
        let mut dropped = Vec::new();
        slab.clear_all(&mut dropped);
        dropped.sort_unstable();
        assert_eq!(dropped, vec![1, 2, 3]);
        assert_eq!(slab.node_occupancy(3), 0);
    }

    #[test]
    fn link_busy_accounting() {
        let mut slab = SwitchSlab::new(1, &shared_layout(2), false);
        let l = SwitchSlab::link(0, 0);
        assert!(slab.link_is_free(l, 0));
        slab.busy_until[l] = 100;
        assert!(!slab.link_is_free(l, 50));
        assert!(slab.link_is_free(l, 100));
    }

    #[test]
    #[should_panic(expected = "delivery without reservation")]
    fn accepting_without_reservation_panics_in_debug() {
        let mut slab = SwitchSlab::new(1, &shared_layout(2), false);
        slab.accept_reserved(0, 0);
    }

    // ------------------------------------------------------------------
    // Model equivalence: the SoA slab against the old Vec-of-structs
    // layout. The model below *is* the previous implementation's
    // `InputBuffer` (a queue of whole packets plus a reservation count);
    // random operation sequences must leave both layouts with identical
    // observable state and identical pop order.
    // ------------------------------------------------------------------

    /// The old per-buffer struct: packets stored inline in the queue.
    struct ModelBuffer {
        queue: VecDeque<u32>,
        reserved: usize,
        capacity: Option<usize>,
    }

    impl ModelBuffer {
        fn has_space(&self) -> bool {
            match self.capacity {
                Some(cap) => self.queue.len() + self.reserved < cap,
                None => true,
            }
        }
        fn occupancy(&self) -> usize {
            self.queue.len() + self.reserved
        }
    }

    proptest! {
        #[test]
        fn slab_matches_vec_of_structs_model(
            depth in 1usize..5,
            ops in proptest::collection::vec((0usize..4, 0usize..20), 0..400),
        ) {
            // One switch, all five ports, shared layout (one buffer/port).
            let layout = shared_layout(depth);
            let mut slab = SwitchSlab::new(1, &layout, false);
            let mut model: Vec<ModelBuffer> = (0..PORTS_PER_SWITCH)
                .map(|_| ModelBuffer {
                    queue: VecDeque::new(),
                    reserved: 0,
                    capacity: Some(depth),
                })
                .collect();
            let mut next_id = 0u32;
            for (op, which) in ops {
                let p = which % PORTS_PER_SWITCH;
                let s = slab.slot(0, p, 0);
                match op {
                    // Reserve a slot iff there is space (forwarding).
                    0 => {
                        prop_assert_eq!(slab.has_space(s), model[p].has_space());
                        if model[p].has_space() {
                            slab.reserved[s] += 1;
                            model[p].reserved += 1;
                        }
                    }
                    // Deliver a previously reserved message.
                    1 => {
                        if model[p].reserved > 0 {
                            slab.accept_reserved(s, next_id);
                            model[p].reserved -= 1;
                            model[p].queue.push_back(next_id);
                            next_id += 1;
                        }
                    }
                    // Inject. The network gates every direct push on
                    // `has_space` (reservations included), exactly like
                    // `can_inject`; a push into reserved-away space never
                    // happens, so the sequence only models legal ones.
                    2 => {
                        let fits = model[p].has_space();
                        prop_assert_eq!(slab.has_space(s), fits);
                        if fits {
                            prop_assert!(slab.push(s, next_id).is_ok());
                            model[p].queue.push_back(next_id);
                            next_id += 1;
                        }
                    }
                    // Forward/eject: pop the head.
                    _ => {
                        prop_assert_eq!(
                            slab.queues[s].pop_front(),
                            model[p].queue.pop_front()
                        );
                    }
                }
                prop_assert_eq!(slab.slot_occupancy(s), model[p].occupancy());
                prop_assert_eq!(slab.has_space(s), model[p].has_space());
            }
            // Final state: identical queue contents on every port.
            for (p, port) in model.iter().enumerate() {
                let s = slab.slot(0, p, 0);
                let got: Vec<u32> = slab.queues[s].iter().copied().collect();
                let want: Vec<u32> = port.queue.iter().copied().collect();
                prop_assert_eq!(got, want);
                prop_assert_eq!(slab.reserved[s] as usize, port.reserved);
            }
        }
    }
}
