//! Switch data structures: input-port buffers and outgoing links.
//!
//! The forwarding logic that moves packets *between* switches needs mutable
//! access to two switches at once, so it lives in [`crate::network`]; this
//! module defines the per-switch state and the local bookkeeping helpers.

use std::collections::VecDeque;

use specsim_base::{Cycle, MsgQueue, NodeId, UtilizationTracker};

use crate::config::BufferLayout;
use crate::packet::Packet;
use crate::topology::{Direction, LINK_DIRECTIONS};

/// One buffer of a switch input port (a virtual-channel buffer in VC mode,
/// the shared port buffer otherwise). `reserved` counts messages currently in
/// flight on the upstream link that will land in this buffer; reserving at
/// forwarding time is what makes the flow control credit-exact.
#[derive(Debug, Clone)]
pub(crate) struct InputBuffer<P> {
    pub queue: MsgQueue<Packet<P>>,
    pub reserved: usize,
    capacity: Option<usize>,
}

impl<P> InputBuffer<P> {
    fn new(capacity: Option<usize>) -> Self {
        let queue = match capacity {
            Some(c) => MsgQueue::bounded(c),
            None => MsgQueue::unbounded(),
        };
        Self {
            queue,
            reserved: 0,
            capacity,
        }
    }

    /// True when a new message may be reserved into this buffer.
    pub fn has_space(&self) -> bool {
        match self.capacity {
            Some(cap) => self.queue.len() + self.reserved < cap,
            None => true,
        }
    }

    /// Messages either queued or in flight towards this buffer.
    pub fn occupancy(&self) -> usize {
        self.queue.len() + self.reserved
    }

    /// Accepts a message whose slot was previously reserved.
    pub fn accept_reserved(&mut self, packet: Packet<P>) {
        debug_assert!(self.reserved > 0, "delivery without reservation");
        self.reserved = self.reserved.saturating_sub(1);
        // A reserved slot is guaranteed to exist; an unbounded queue always
        // accepts. Losing a packet here would be a flow-control bug.
        self.queue
            .push(packet)
            .unwrap_or_else(|_| panic!("reserved buffer slot was not available"));
    }

    /// Drops all queued messages and reservations (recovery drain).
    pub fn clear(&mut self) -> usize {
        let dropped = self.queue.len();
        self.queue.clear();
        self.reserved = 0;
        dropped
    }
}

/// One input port of a switch: a set of buffers plus a round-robin pointer
/// for fair selection among them.
///
/// `queued` mirrors the total number of messages in the port's buffer queues.
/// It is maintained incrementally by [`crate::network::Network`] (inject,
/// link delivery, forward/eject, drain) and feeds the active-switch worklist,
/// so the per-cycle kernel never scans buffers of idle ports.
#[derive(Debug, Clone)]
pub(crate) struct InputPort<P> {
    pub buffers: Vec<InputBuffer<P>>,
    pub rr_next: usize,
    pub queued: usize,
}

impl<P> InputPort<P> {
    fn new(layout: &BufferLayout, pooled: bool) -> Self {
        let capacity = if pooled {
            None
        } else {
            layout.buffer_capacity()
        };
        let buffers = (0..layout.buffers_per_port())
            .map(|_| InputBuffer::new(capacity))
            .collect();
        Self {
            buffers,
            rr_next: 0,
            queued: 0,
        }
    }

    /// Total messages queued or reserved across all buffers of this port.
    pub fn occupancy(&self) -> usize {
        self.buffers.iter().map(InputBuffer::occupancy).sum()
    }

    /// Total messages actually queued (excluding reservations), recomputed
    /// from the buffers (diagnostic ground truth for the `queued` counter).
    pub fn queued_scan(&self) -> usize {
        self.buffers.iter().map(|b| b.queue.len()).sum()
    }
}

/// A message in flight on a link, due to arrive at `arrival`.
#[derive(Debug, Clone)]
pub(crate) struct InTransit<P> {
    pub arrival: Cycle,
    pub target_buffer: usize,
    pub packet: Packet<P>,
}

/// One outgoing unidirectional link of a switch.
#[derive(Debug, Clone)]
pub(crate) struct OutLink<P> {
    /// The link is serializing a message until this cycle.
    pub busy_until: Cycle,
    /// Messages currently propagating on the link (bounded in practice by the
    /// switch latency / serialization ratio).
    pub in_transit: VecDeque<InTransit<P>>,
    /// Busy-cycle accounting for the link-utilization statistic.
    pub util: UtilizationTracker,
}

impl<P> OutLink<P> {
    fn new() -> Self {
        Self {
            busy_until: 0,
            in_transit: VecDeque::new(),
            util: UtilizationTracker::new(),
        }
    }

    /// True when a new message may start serializing at cycle `now`.
    pub fn is_free(&self, now: Cycle) -> bool {
        self.busy_until <= now
    }

    /// Drops all in-flight messages (recovery drain).
    pub fn clear(&mut self) -> usize {
        let dropped = self.in_transit.len();
        self.in_transit.clear();
        dropped
    }
}

/// One switch of the torus: five input ports (four link directions plus the
/// local injection port) and four outgoing links.
///
/// `queued_total` is the sum of the ports' `queued` counters; a switch is on
/// the network's active-switch worklist iff it is non-zero. Like the per-port
/// counters it is maintained by [`crate::network::Network`].
#[derive(Debug, Clone)]
pub(crate) struct Switch<P> {
    pub node: NodeId,
    /// Input ports indexed by [`Direction::index`]; index 4 is the local
    /// (injection) port.
    pub ports: Vec<InputPort<P>>,
    /// Outgoing links indexed by [`Direction::index`] (no local link).
    pub links: Vec<OutLink<P>>,
    /// Total messages queued across all input ports.
    pub queued_total: usize,
}

impl<P> Switch<P> {
    /// Builds a switch with the layout's per-buffer capacities. With
    /// `pooled` set (shared-pool buffer policy) the buffer *structure* is
    /// kept but every individual capacity is unbounded — the node's shared
    /// slot pool, enforced by [`crate::network::Network`], is the only
    /// bound.
    pub fn new(node: NodeId, layout: &BufferLayout, pooled: bool) -> Self {
        let mut ports: Vec<InputPort<P>> = (0..5).map(|_| InputPort::new(layout, pooled)).collect();
        // The local (injection) port honours the injection-queue depth rather
        // than the per-VC depth.
        let injection_cap = if pooled {
            None
        } else {
            layout.injection_capacity()
        };
        for buffer in &mut ports[Direction::Local.index()].buffers {
            *buffer = InputBuffer::new(injection_cap);
        }
        Self {
            node,
            ports,
            links: LINK_DIRECTIONS.iter().map(|_| OutLink::new()).collect(),
            queued_total: 0,
        }
    }

    /// Total messages queued or in flight at this switch (all ports and
    /// links), recomputed from the underlying queues.
    pub fn occupancy(&self) -> usize {
        self.ports.iter().map(InputPort::queued_scan).sum::<usize>()
            + self.links.iter().map(|l| l.in_transit.len()).sum::<usize>()
    }

    /// Drops every queued and in-flight message (recovery drain); returns how
    /// many were dropped.
    pub fn clear(&mut self) -> usize {
        let mut dropped = 0;
        for port in &mut self.ports {
            for buffer in &mut port.buffers {
                dropped += buffer.clear();
            }
            port.queued = 0;
        }
        for link in &mut self.links {
            dropped += link.clear();
        }
        self.queued_total = 0;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::VirtualNetwork;
    use specsim_base::MessageSize;

    fn packet(seq: u64) -> Packet<u32> {
        Packet {
            src: NodeId(0),
            dst: NodeId(1),
            vnet: VirtualNetwork::Request,
            size: MessageSize::Control,
            seq,
            injected_at: 0,
            taint: crate::packet::PacketTaint::Clean,
            payload: seq as u32,
        }
    }

    fn shared_layout(depth: usize) -> BufferLayout {
        BufferLayout::Shared {
            depth,
            ejection_depth: depth,
            injection_depth: depth,
        }
    }

    #[test]
    fn reservation_consumes_space_before_arrival() {
        let mut b: InputBuffer<u32> = InputBuffer::new(Some(2));
        assert!(b.has_space());
        b.reserved += 1;
        b.reserved += 1;
        assert!(!b.has_space());
        assert_eq!(b.occupancy(), 2);
        b.accept_reserved(packet(0));
        assert_eq!(b.queue.len(), 1);
        assert_eq!(b.reserved, 1);
        assert!(!b.has_space());
    }

    #[test]
    fn unbounded_buffer_always_has_space() {
        let mut b: InputBuffer<u32> = InputBuffer::new(None);
        for i in 0..1000 {
            b.reserved += 1;
            b.accept_reserved(packet(i));
        }
        assert!(b.has_space());
        assert_eq!(b.occupancy(), 1000);
    }

    #[test]
    fn pooled_switch_buffers_are_individually_unbounded() {
        let layout = shared_layout(1);
        let sw: Switch<u32> = Switch::new(NodeId(0), &layout, true);
        for port in &sw.ports {
            for b in &port.buffers {
                assert!(b.capacity.is_none(), "pooled buffers must be unbounded");
            }
        }
    }

    #[test]
    fn switch_occupancy_and_clear() {
        let layout = shared_layout(4);
        let mut sw: Switch<u32> = Switch::new(NodeId(3), &layout, false);
        sw.ports[0].buffers[0].queue.push(packet(1)).unwrap();
        sw.ports[4].buffers[0].queue.push(packet(2)).unwrap();
        sw.links[0].in_transit.push_back(InTransit {
            arrival: 10,
            target_buffer: 0,
            packet: packet(3),
        });
        assert_eq!(sw.occupancy(), 3);
        assert_eq!(sw.clear(), 3);
        assert_eq!(sw.occupancy(), 0);
    }

    #[test]
    fn link_busy_accounting() {
        let mut link: OutLink<u32> = OutLink::new();
        assert!(link.is_free(0));
        link.busy_until = 100;
        assert!(!link.is_free(50));
        assert!(link.is_free(100));
    }

    #[test]
    #[should_panic(expected = "delivery without reservation")]
    fn accepting_without_reservation_panics_in_debug() {
        let mut b: InputBuffer<u32> = InputBuffer::new(Some(2));
        b.accept_reserved(packet(0));
    }
}
