//! Point-to-point ordering tracking.
//!
//! The speculatively simplified directory protocol (Section 3.1) relies on
//! the interconnect delivering messages from a given source to a given
//! destination, within one virtual network, in the order they were sent.
//! Adaptive routing does not guarantee that. This module stamps every packet
//! with a per-(source, destination, virtual network) sequence number at
//! injection and, at delivery, counts how many packets arrive after a
//! later-numbered packet from the same stream has already arrived — the
//! "fraction of messages re-ordered" statistic of Section 5.3.

use std::collections::HashMap;

use specsim_base::NodeId;

use crate::packet::{VirtualNetwork, ALL_VIRTUAL_NETWORKS};

/// Key identifying one ordered stream: (source, destination, virtual network).
type StreamKey = (NodeId, NodeId, usize);

/// Stamps sequence numbers at injection and detects order inversions at
/// delivery.
#[derive(Debug, Default, Clone)]
pub struct OrderingTracker {
    next_seq: HashMap<StreamKey, u64>,
    highest_delivered: HashMap<StreamKey, u64>,
    delivered_per_vnet: [u64; 4],
    reordered_per_vnet: [u64; 4],
}

impl OrderingTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the sequence number to stamp on the next packet of the stream
    /// `(src, dst, vnet)` and advances the stream.
    pub fn stamp(&mut self, src: NodeId, dst: NodeId, vnet: VirtualNetwork) -> u64 {
        let counter = self.next_seq.entry((src, dst, vnet.index())).or_insert(0);
        let seq = *counter;
        *counter += 1;
        seq
    }

    /// Records the delivery of a packet with sequence number `seq` on stream
    /// `(src, dst, vnet)`. Returns `true` if the packet was overtaken by a
    /// later one (i.e. point-to-point order was violated for this packet).
    pub fn observe_delivery(
        &mut self,
        src: NodeId,
        dst: NodeId,
        vnet: VirtualNetwork,
        seq: u64,
    ) -> bool {
        let vi = vnet.index();
        self.delivered_per_vnet[vi] += 1;
        let highest = self
            .highest_delivered
            .entry((src, dst, vi))
            .or_insert(u64::MAX); // MAX sentinel: nothing delivered yet
        let reordered = *highest != u64::MAX && seq < *highest;
        if *highest == u64::MAX || seq > *highest {
            *highest = seq;
        }
        if reordered {
            self.reordered_per_vnet[vi] += 1;
        }
        reordered
    }

    /// Number of packets delivered on a virtual network.
    #[must_use]
    pub fn delivered(&self, vnet: VirtualNetwork) -> u64 {
        self.delivered_per_vnet[vnet.index()]
    }

    /// Number of packets delivered out of point-to-point order on a virtual
    /// network.
    #[must_use]
    pub fn reordered(&self, vnet: VirtualNetwork) -> u64 {
        self.reordered_per_vnet[vnet.index()]
    }

    /// Fraction of packets delivered out of order on a virtual network
    /// (0 when nothing has been delivered).
    #[must_use]
    pub fn reorder_fraction(&self, vnet: VirtualNetwork) -> f64 {
        let d = self.delivered(vnet);
        if d == 0 {
            0.0
        } else {
            self.reordered(vnet) as f64 / d as f64
        }
    }

    /// Total packets delivered across all virtual networks.
    #[must_use]
    pub fn total_delivered(&self) -> u64 {
        self.delivered_per_vnet.iter().sum()
    }

    /// Total packets delivered out of order across all virtual networks.
    #[must_use]
    pub fn total_reordered(&self) -> u64 {
        self.reordered_per_vnet.iter().sum()
    }

    /// Per-virtual-network `(delivered, reordered)` pairs in
    /// [`ALL_VIRTUAL_NETWORKS`] order.
    #[must_use]
    pub fn per_vnet_summary(&self) -> [(VirtualNetwork, u64, u64); 4] {
        let mut out = [(VirtualNetwork::Request, 0, 0); 4];
        for (i, vn) in ALL_VIRTUAL_NETWORKS.into_iter().enumerate() {
            out[i] = (vn, self.delivered(vn), self.reordered(vn));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: NodeId = NodeId(1);
    const DST: NodeId = NodeId(2);

    #[test]
    fn stamps_are_sequential_per_stream() {
        let mut t = OrderingTracker::new();
        assert_eq!(t.stamp(SRC, DST, VirtualNetwork::Request), 0);
        assert_eq!(t.stamp(SRC, DST, VirtualNetwork::Request), 1);
        // A different stream has its own counter.
        assert_eq!(t.stamp(SRC, DST, VirtualNetwork::Response), 0);
        assert_eq!(t.stamp(DST, SRC, VirtualNetwork::Request), 0);
    }

    #[test]
    fn in_order_delivery_counts_no_reorders() {
        let mut t = OrderingTracker::new();
        for seq in 0..10 {
            let s = t.stamp(SRC, DST, VirtualNetwork::ForwardedRequest);
            assert_eq!(s, seq);
            assert!(!t.observe_delivery(SRC, DST, VirtualNetwork::ForwardedRequest, s));
        }
        assert_eq!(t.reordered(VirtualNetwork::ForwardedRequest), 0);
        assert_eq!(t.delivered(VirtualNetwork::ForwardedRequest), 10);
        assert_eq!(t.reorder_fraction(VirtualNetwork::ForwardedRequest), 0.0);
    }

    #[test]
    fn overtaken_packet_is_counted_as_reordered() {
        let mut t = OrderingTracker::new();
        let s0 = t.stamp(SRC, DST, VirtualNetwork::ForwardedRequest);
        let s1 = t.stamp(SRC, DST, VirtualNetwork::ForwardedRequest);
        // s1 (sent later) arrives first; s0 then arrives out of order.
        assert!(!t.observe_delivery(SRC, DST, VirtualNetwork::ForwardedRequest, s1));
        assert!(t.observe_delivery(SRC, DST, VirtualNetwork::ForwardedRequest, s0));
        assert_eq!(t.reordered(VirtualNetwork::ForwardedRequest), 1);
        assert_eq!(t.delivered(VirtualNetwork::ForwardedRequest), 2);
        assert!((t.reorder_fraction(VirtualNetwork::ForwardedRequest) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reorders_are_per_stream_not_global() {
        let mut t = OrderingTracker::new();
        // Stream A delivers seq 5 first; stream B delivering seq 0 is not a reorder.
        for _ in 0..6 {
            t.stamp(SRC, DST, VirtualNetwork::Request);
        }
        let b0 = t.stamp(DST, SRC, VirtualNetwork::Request);
        assert!(!t.observe_delivery(SRC, DST, VirtualNetwork::Request, 5));
        assert!(!t.observe_delivery(DST, SRC, VirtualNetwork::Request, b0));
        assert_eq!(t.total_reordered(), 0);
    }

    #[test]
    fn summary_lists_all_vnets() {
        let mut t = OrderingTracker::new();
        let s = t.stamp(SRC, DST, VirtualNetwork::FinalAck);
        t.observe_delivery(SRC, DST, VirtualNetwork::FinalAck, s);
        let summary = t.per_vnet_summary();
        assert_eq!(summary.len(), 4);
        let finalack = summary
            .iter()
            .find(|(vn, _, _)| *vn == VirtualNetwork::FinalAck)
            .unwrap();
        assert_eq!(finalack.1, 1);
        assert_eq!(t.total_delivered(), 1);
    }
}
