//! # specsim-net
//!
//! The interconnection-network substrate of the speculation-for-simplicity
//! simulator: a 2D bidirectional torus (the paper's target system, Section
//! 3.1) with
//!
//! * **static dimension-order routing** (preserves point-to-point ordering),
//! * **minimal adaptive routing** that picks among productive directions by
//!   outgoing queue length (can violate point-to-point ordering — Figure 1),
//! * **virtual networks** (one per coherence message class) to avoid endpoint
//!   deadlock, and **virtual-channel flow control** with dateline allocation
//!   (plus a Duato-style adaptive channel) to avoid switch deadlock in the
//!   conventional design (Section 4),
//! * a **shared-buffer mode** with no virtual channels/networks — the
//!   speculatively simplified design of Section 4, in which deadlock is
//!   possible and must be detected and recovered from,
//! * a **shared-pool buffer policy** ([`specsim_base::BufferPolicy`]) that
//!   keeps any buffer structure but replaces all per-class sizing with one
//!   slot pool per node ([`SlotPool`]) — the Section 4 speculation proper:
//!   buffer-dependency cycles can deadlock, detection is left to the
//!   coherence-transaction timeout, and post-recovery re-execution can
//!   reserve per-network slots as a forward-progress measure,
//! * a **worst-case-buffering mode** used as the deadlock-free comparison
//!   baseline in Section 5.3,
//! * per-(source, destination, virtual-network) **sequence stamping and
//!   reorder accounting** (the "fraction of messages re-ordered" statistics of
//!   Section 5.3),
//! * a **progress watchdog** and structural occupancy snapshots used to
//!   diagnose deadlocks in tests and experiments,
//! * an **ordered broadcast bus** used as the address network of the snooping
//!   system (Section 3.2).
//!
//! The network is generic over its payload type `P`: the coherence crates
//! define the payloads; this crate only moves them and accounts for time.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bus;
pub mod config;
pub mod deadlock;
pub mod network;
pub mod ordering;
pub mod packet;
pub mod pool;
pub mod routing;
pub mod stats;
pub mod switch;
pub mod topology;

pub use bus::OrderedBus;
pub use config::NetConfig;
pub use deadlock::ProgressWatchdog;
pub use network::{ForwardProbe, InjectError, Network};
pub use ordering::OrderingTracker;
pub use packet::{Packet, PacketArena, PacketTaint, VirtualNetwork, ALL_VIRTUAL_NETWORKS};
pub use pool::SlotPool;
pub use stats::NetStats;
pub use topology::{Coord, Direction, Torus};
