//! Deadlock detection support.
//!
//! The speculatively simplified interconnect (Section 4) removes virtual
//! channels and relies on detection + recovery instead of avoidance. The
//! *architectural* detection mechanism of the paper is a coherence
//! transaction timeout ("the requestor of the transaction will timeout and
//! trigger a system recovery"), which lives with the protocol controllers.
//! This module provides the complementary *diagnostic* machinery used by
//! tests and experiments to confirm that a network truly is (or is not)
//! deadlocked: a progress watchdog that notices when messages exist but none
//! has moved for a long time.

use specsim_base::Cycle;

/// Detects lack of forward progress: if the network holds messages but none
/// has moved for `threshold` cycles, the network is either deadlocked or
/// completely throttled by the endpoints.
#[derive(Debug, Clone)]
pub struct ProgressWatchdog {
    last_progress: Cycle,
    threshold: u64,
}

impl ProgressWatchdog {
    /// Creates a watchdog that reports a stall after `threshold` cycles
    /// without any message movement.
    #[must_use]
    pub fn new(threshold: u64) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        Self {
            last_progress: 0,
            threshold,
        }
    }

    /// Records that at least one message moved at cycle `now`.
    pub fn record_progress(&mut self, now: Cycle) {
        self.last_progress = self.last_progress.max(now);
    }

    /// Cycle of the most recent recorded movement.
    #[must_use]
    pub fn last_progress(&self) -> Cycle {
        self.last_progress
    }

    /// Returns `true` when messages are present (`in_flight > 0`) but nothing
    /// has moved for at least the threshold.
    #[must_use]
    pub fn is_stalled(&self, now: Cycle, in_flight: usize) -> bool {
        in_flight > 0 && now.saturating_sub(self.last_progress) >= self.threshold
    }

    /// Resets the watchdog (e.g. after a recovery drained the network).
    pub fn reset(&mut self, now: Cycle) {
        self.last_progress = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_network_is_never_stalled() {
        let w = ProgressWatchdog::new(100);
        assert!(!w.is_stalled(1_000_000, 0));
    }

    #[test]
    fn stall_requires_threshold_of_silence() {
        let mut w = ProgressWatchdog::new(100);
        w.record_progress(50);
        assert!(!w.is_stalled(100, 3));
        assert!(!w.is_stalled(149, 3));
        assert!(w.is_stalled(150, 3));
        // Progress resets the countdown.
        w.record_progress(160);
        assert!(!w.is_stalled(200, 3));
        assert!(w.is_stalled(260, 3));
    }

    #[test]
    fn reset_clears_the_stall() {
        let mut w = ProgressWatchdog::new(10);
        w.record_progress(0);
        assert!(w.is_stalled(20, 1));
        w.reset(20);
        assert!(!w.is_stalled(25, 1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_panics() {
        let _ = ProgressWatchdog::new(0);
    }
}
