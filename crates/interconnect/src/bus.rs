//! Totally ordered broadcast network (the snooping address network).
//!
//! The broadcast snooping protocol of Section 3.2 relies on an address
//! network that delivers every coherence request to every node (including the
//! requester) in a single global order. This module models such a network:
//! nodes post requests, an arbiter grants one request per arbitration slot in
//! round-robin order, and the granted request is broadcast to all nodes with
//! a fixed latency. The data responses of the snooping system travel on an
//! ordinary point-to-point network ([`crate::Network`]); only the address
//! traffic needs total order.

use std::collections::VecDeque;

use specsim_base::{Counter, Cycle, CycleDelta, MsgQueue, NodeId};

/// A snoop delivered to a node: the request payload plus its position in the
/// global order and its issuer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusDelivery<P> {
    /// The node that issued the request.
    pub src: NodeId,
    /// Position of this request in the bus's total order (0-based).
    pub order: u64,
    /// Cycle at which the request was granted the bus.
    pub granted_at: Cycle,
    /// The protocol payload.
    pub payload: P,
}

/// Statistics for an [`OrderedBus`].
#[derive(Debug, Clone, Default)]
pub struct BusStats {
    /// Requests posted by nodes.
    pub requested: Counter,
    /// Requests granted and broadcast.
    pub granted: Counter,
    /// Snoop deliveries consumed by nodes.
    pub consumed: Counter,
}

/// A totally ordered broadcast bus carrying payloads of type `P`.
#[derive(Debug, Clone)]
pub struct OrderedBus<P> {
    num_nodes: usize,
    arbitration_interval: CycleDelta,
    broadcast_latency: CycleDelta,
    pending: Vec<MsgQueue<P>>,
    in_flight: VecDeque<(Cycle, NodeId, u64, Cycle, P)>,
    delivery: Vec<VecDeque<BusDelivery<P>>>,
    next_grant_at: Cycle,
    next_order: u64,
    rr: usize,
    stats: BusStats,
}

impl<P: Clone> OrderedBus<P> {
    /// Creates a bus for `num_nodes` nodes. One request is granted every
    /// `arbitration_interval` cycles (the bus bandwidth limit) and a granted
    /// request is observed by every node `broadcast_latency` cycles later.
    #[must_use]
    pub fn new(
        num_nodes: usize,
        arbitration_interval: CycleDelta,
        broadcast_latency: CycleDelta,
    ) -> Self {
        assert!(num_nodes > 0, "bus needs at least one node");
        assert!(
            arbitration_interval > 0,
            "arbitration interval must be positive"
        );
        Self {
            num_nodes,
            arbitration_interval,
            broadcast_latency,
            pending: (0..num_nodes).map(|_| MsgQueue::unbounded()).collect(),
            in_flight: VecDeque::new(),
            delivery: (0..num_nodes).map(|_| VecDeque::new()).collect(),
            next_grant_at: 0,
            next_order: 0,
            rr: 0,
            stats: BusStats::default(),
        }
    }

    /// Number of nodes attached to the bus.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Posts a request from `src`; it will be granted in some later
    /// arbitration slot.
    pub fn request(&mut self, src: NodeId, payload: P) {
        self.stats.requested.incr();
        self.pending[src.index()]
            .push(payload)
            .unwrap_or_else(|_| panic!("bus pending queues are unbounded"));
    }

    /// Requests waiting for the bus at `src`.
    #[must_use]
    pub fn pending_len(&self, src: NodeId) -> usize {
        self.pending[src.index()].len()
    }

    /// Total requests granted so far (length of the global order).
    #[must_use]
    pub fn granted(&self) -> u64 {
        self.stats.granted.get()
    }

    /// Snoops waiting to be consumed by `node`.
    #[must_use]
    pub fn snoop_len(&self, node: NodeId) -> usize {
        self.delivery[node.index()].len()
    }

    /// Advances the bus by one cycle: grants at most one pending request when
    /// the arbitration slot is free, and delivers broadcasts whose latency
    /// has elapsed.
    pub fn tick(&mut self, now: Cycle) {
        // Arbitration.
        if now >= self.next_grant_at {
            let mut granted = None;
            for k in 0..self.num_nodes {
                let i = (self.rr + k) % self.num_nodes;
                if let Some(payload) = self.pending[i].pop() {
                    granted = Some((NodeId::from(i), payload));
                    self.rr = (i + 1) % self.num_nodes;
                    break;
                }
            }
            if let Some((src, payload)) = granted {
                let order = self.next_order;
                self.next_order += 1;
                self.stats.granted.incr();
                self.in_flight
                    .push_back((now + self.broadcast_latency, src, order, now, payload));
                self.next_grant_at = now + self.arbitration_interval;
            }
        }
        // Delivery: broadcasts whose latency has elapsed reach every node in
        // grant order.
        while matches!(self.in_flight.front(), Some(&(at, ..)) if at <= now) {
            let (_, src, order, granted_at, payload) = self.in_flight.pop_front().unwrap();
            for node in 0..self.num_nodes {
                self.delivery[node].push_back(BusDelivery {
                    src,
                    order,
                    granted_at,
                    payload: payload.clone(),
                });
            }
        }
    }

    /// Removes the next snoop for `node` (in global order).
    pub fn pop_snoop(&mut self, node: NodeId) -> Option<BusDelivery<P>> {
        let d = self.delivery[node.index()].pop_front();
        if d.is_some() {
            self.stats.consumed.incr();
        }
        d
    }

    /// Peeks the next snoop for `node` without consuming it.
    #[must_use]
    pub fn peek_snoop(&self, node: NodeId) -> Option<&BusDelivery<P>> {
        self.delivery[node.index()].front()
    }

    /// Bus statistics.
    #[must_use]
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// Drops every pending request, in-flight broadcast and undelivered
    /// snoop (recovery drain). Returns the number of messages dropped.
    pub fn drain(&mut self) -> usize {
        let mut dropped = 0;
        for q in &mut self.pending {
            dropped += q.len();
            q.clear();
        }
        dropped += self.in_flight.len();
        self.in_flight.clear();
        for q in &mut self.delivery {
            dropped += q.len();
            q.clear();
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nodes_observe_the_same_total_order() {
        let mut bus: OrderedBus<u32> = OrderedBus::new(4, 5, 20);
        // Several nodes race to post requests.
        bus.request(NodeId(2), 200);
        bus.request(NodeId(0), 100);
        bus.request(NodeId(3), 300);
        bus.request(NodeId(0), 101);
        let mut now = 0;
        while bus.granted() < 4 || bus.snoop_len(NodeId(0)) < 4 {
            now += 1;
            bus.tick(now);
            assert!(now < 1000, "bus made no progress");
        }
        let orders: Vec<Vec<(u64, u32)>> = (0..4)
            .map(|n| {
                let mut v = Vec::new();
                while let Some(d) = bus.pop_snoop(NodeId::from(n)) {
                    v.push((d.order, d.payload));
                }
                v
            })
            .collect();
        for n in 1..4 {
            assert_eq!(orders[n], orders[0], "node {n} saw a different order");
        }
        assert_eq!(orders[0].len(), 4);
        // Orders are consecutive from zero.
        for (i, (order, _)) in orders[0].iter().enumerate() {
            assert_eq!(*order, i as u64);
        }
    }

    #[test]
    fn requester_also_observes_its_own_request() {
        let mut bus: OrderedBus<&'static str> = OrderedBus::new(2, 1, 3);
        bus.request(NodeId(1), "writeback");
        for now in 1..10 {
            bus.tick(now);
        }
        let seen = bus.pop_snoop(NodeId(1)).unwrap();
        assert_eq!(seen.payload, "writeback");
        assert_eq!(seen.src, NodeId(1));
    }

    #[test]
    fn arbitration_interval_limits_throughput() {
        let mut bus: OrderedBus<u32> = OrderedBus::new(2, 10, 1);
        for i in 0..5 {
            bus.request(NodeId(0), i);
        }
        for now in 1..=25 {
            bus.tick(now);
        }
        // With a 10-cycle arbitration interval only ~3 grants fit in 25 cycles.
        assert!(bus.granted() <= 3, "granted {}", bus.granted());
        assert!(bus.granted() >= 2);
    }

    #[test]
    fn round_robin_is_fair_across_nodes() {
        let mut bus: OrderedBus<u32> = OrderedBus::new(4, 1, 1);
        // Node 0 floods; node 3 posts one request. Node 3 must be granted
        // within the first few slots.
        for i in 0..100 {
            bus.request(NodeId(0), i);
        }
        bus.request(NodeId(3), 999);
        let mut now = 0;
        let mut first_999 = None;
        while first_999.is_none() && now < 100 {
            now += 1;
            bus.tick(now);
            while let Some(d) = bus.pop_snoop(NodeId(1)) {
                if d.payload == 999 {
                    first_999 = Some(d.order);
                }
            }
        }
        let order = first_999.expect("node 3's request was starved");
        assert!(
            order < 4,
            "round robin should grant node 3 quickly, order {order}"
        );
    }

    #[test]
    fn drain_discards_everything() {
        let mut bus: OrderedBus<u32> = OrderedBus::new(2, 2, 10);
        bus.request(NodeId(0), 1);
        bus.request(NodeId(1), 2);
        bus.tick(1);
        let dropped = bus.drain();
        assert!(dropped >= 2);
        assert_eq!(bus.pending_len(NodeId(0)), 0);
        assert_eq!(bus.snoop_len(NodeId(0)), 0);
        for now in 2..20 {
            bus.tick(now);
        }
        assert_eq!(bus.snoop_len(NodeId(1)), 0);
    }

    #[test]
    fn broadcast_latency_is_respected() {
        let mut bus: OrderedBus<u32> = OrderedBus::new(2, 1, 50);
        bus.request(NodeId(0), 7);
        bus.tick(1); // granted at cycle 1
        for now in 2..51 {
            bus.tick(now);
            assert_eq!(bus.snoop_len(NodeId(1)), 0, "delivered too early at {now}");
        }
        bus.tick(51);
        assert_eq!(bus.snoop_len(NodeId(1)), 1);
        let d = bus.pop_snoop(NodeId(1)).unwrap();
        assert_eq!(d.granted_at, 1);
    }
}
