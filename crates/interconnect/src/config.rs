//! Network configuration and buffer layout.

use specsim_base::{BufferPolicy, CycleDelta, FlowControl, LinkBandwidth, RoutingPolicy};

use crate::packet::VirtualNetwork;
use crate::topology::Direction;

/// Configuration of one interconnection network instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Number of nodes / switches. Must have a `W × H` torus factorisation
    /// with both dimensions ≥ 2 (see [`specsim_base::squarest_torus_dims`]).
    pub num_nodes: usize,
    /// Explicit `(width, height)` of the torus; `None` derives the squarest
    /// factorisation of [`Self::num_nodes`]. When set, `width × height` must
    /// equal `num_nodes`.
    pub torus_dims: Option<(usize, usize)>,
    /// Routing policy (static dimension-order or minimal adaptive).
    pub routing: RoutingPolicy,
    /// Deadlock-avoidance strategy (virtual channels, shared buffers, or
    /// worst-case buffering).
    pub flow_control: FlowControl,
    /// How buffer capacity is provisioned. [`BufferPolicy::VirtualNetworks`]
    /// keeps the per-buffer depths below (today's behavior, bit-identical);
    /// [`BufferPolicy::SharedPool`] makes individual buffers unbounded and
    /// bounds each node by one shared slot pool instead — the speculative
    /// Section 4 design in which deadlock is possible (see
    /// [`crate::SlotPool`]).
    pub buffer_policy: BufferPolicy,
    /// Link bandwidth, which sets per-message serialization time.
    pub link_bandwidth: LinkBandwidth,
    /// Per-hop switch pipeline latency in cycles.
    pub switch_latency: CycleDelta,
    /// Depth (in messages) of each virtual-channel buffer in
    /// [`FlowControl::VirtualChannels`] mode.
    pub vc_buffer_depth: usize,
    /// Depth of each endpoint ejection queue (per virtual network in VC mode,
    /// shared in shared-buffer mode).
    pub ejection_queue_depth: usize,
    /// Depth of each endpoint injection queue.
    pub injection_queue_depth: usize,
    /// Quiet cycles the progress watchdog tolerates before reporting a stall
    /// (see [`crate::ProgressWatchdog`]).
    pub stall_threshold: u64,
    /// In [`BufferPolicy::SharedPool`] mode, an optional separate budget for
    /// the *switch side* of each node (input-port buffers and in-flight
    /// reservations). `None` (with [`Self::pool_slots_endpoint`] also `None`)
    /// keeps the single unified pool — bit-identical to the historical
    /// behavior. Set both fields (or use [`Self::shared_pool_split`]) to
    /// split the budget.
    pub pool_slots_switch: Option<usize>,
    /// In [`BufferPolicy::SharedPool`] mode, an optional separate budget for
    /// the *endpoint side* of each node (ejection queues). See
    /// [`Self::pool_slots_switch`].
    pub pool_slots_endpoint: Option<usize>,
}

/// Default progress-watchdog threshold: long enough that back-pressure waves
/// under saturation never trip it, short enough that experiments notice a
/// true deadlock quickly.
pub const DEFAULT_STALL_THRESHOLD: u64 = 10_000;

impl NetConfig {
    /// A configuration mirroring the paper's conventional (non-speculative)
    /// interconnect: 16 nodes, static dimension-order routing, four virtual
    /// networks with two virtual channels each.
    #[must_use]
    pub fn conventional(num_nodes: usize, link_bandwidth: LinkBandwidth) -> Self {
        Self {
            num_nodes,
            torus_dims: None,
            routing: RoutingPolicy::Static,
            flow_control: FlowControl::VirtualChannels {
                channels_per_network: 2,
            },
            buffer_policy: BufferPolicy::VirtualNetworks,
            link_bandwidth,
            switch_latency: 8,
            vc_buffer_depth: 4,
            ejection_queue_depth: 8,
            injection_queue_depth: 8,
            stall_threshold: DEFAULT_STALL_THRESHOLD,
            pool_slots_switch: None,
            pool_slots_endpoint: None,
        }
    }

    /// The speculatively simplified interconnect of Section 4: adaptive
    /// routing, no virtual channels or networks, a single shared buffer pool
    /// of `buffers_per_port` messages at every switch port and endpoint.
    #[must_use]
    pub fn speculative(
        num_nodes: usize,
        link_bandwidth: LinkBandwidth,
        buffers_per_port: usize,
    ) -> Self {
        Self {
            num_nodes,
            torus_dims: None,
            routing: RoutingPolicy::Adaptive,
            flow_control: FlowControl::SharedBuffers { buffers_per_port },
            buffer_policy: BufferPolicy::VirtualNetworks,
            link_bandwidth,
            switch_latency: 8,
            vc_buffer_depth: buffers_per_port,
            ejection_queue_depth: buffers_per_port,
            injection_queue_depth: buffers_per_port,
            stall_threshold: DEFAULT_STALL_THRESHOLD,
            pool_slots_switch: None,
            pool_slots_endpoint: None,
        }
    }

    /// The worst-case-buffering baseline of Section 5.3 (no virtual channels,
    /// buffers that can never fill), with a choice of routing policy. Also
    /// used (per footnote 1 of the paper) for the directory-protocol
    /// experiments, which "simplistically avoid deadlock with full buffering"
    /// to isolate the effect of adaptive routing.
    #[must_use]
    pub fn full_buffering(
        num_nodes: usize,
        link_bandwidth: LinkBandwidth,
        routing: RoutingPolicy,
    ) -> Self {
        Self {
            num_nodes,
            torus_dims: None,
            routing,
            flow_control: FlowControl::WorstCaseBuffering,
            buffer_policy: BufferPolicy::VirtualNetworks,
            link_bandwidth,
            switch_latency: 8,
            vc_buffer_depth: 4,
            ejection_queue_depth: 8,
            injection_queue_depth: 8,
            stall_threshold: DEFAULT_STALL_THRESHOLD,
            pool_slots_switch: None,
            pool_slots_endpoint: None,
        }
    }

    /// The speculative shared-pool interconnect of Section 4's third case
    /// study: the buffer *structure* of the conventional design (so routing
    /// and fairness are unchanged) but all sizing analysis replaced by one
    /// pool of `total_slots` message slots per node, from which every
    /// virtual network and the ejection path draw. Deadlock is possible and
    /// is detected by the coherence-transaction timeout, then broken by
    /// SafetyNet recovery.
    #[must_use]
    pub fn shared_pool(
        num_nodes: usize,
        link_bandwidth: LinkBandwidth,
        total_slots: usize,
    ) -> Self {
        let mut cfg = Self::conventional(num_nodes, link_bandwidth);
        cfg.routing = RoutingPolicy::Adaptive;
        cfg.buffer_policy = BufferPolicy::SharedPool { total_slots };
        cfg
    }

    /// A shared-pool interconnect whose per-node budget is split
    /// endpoint-vs-switch: `switch_slots` message slots cover a node's
    /// switch-side occupancy (input-port buffers plus in-flight downstream
    /// reservations) and `endpoint_slots` cover its ejection queues. A
    /// message trades its switch slot for an endpoint slot on ejection, so a
    /// saturated fabric can no longer starve local delivery (and vice versa)
    /// — a finer-grained version of the Section 4 single pool.
    #[must_use]
    pub fn shared_pool_split(
        num_nodes: usize,
        link_bandwidth: LinkBandwidth,
        switch_slots: usize,
        endpoint_slots: usize,
    ) -> Self {
        let mut cfg = Self::shared_pool(num_nodes, link_bandwidth, switch_slots + endpoint_slots);
        cfg.pool_slots_switch = Some(switch_slots);
        cfg.pool_slots_endpoint = Some(endpoint_slots);
        cfg
    }

    /// Slots in each node's shared pool when the policy is
    /// [`BufferPolicy::SharedPool`], else `None`.
    #[must_use]
    pub fn pool_slots(&self) -> Option<usize> {
        match self.buffer_policy {
            BufferPolicy::SharedPool { total_slots } => Some(total_slots),
            BufferPolicy::VirtualNetworks => None,
        }
    }

    /// The `(switch_slots, endpoint_slots)` split budget, when the policy is
    /// [`BufferPolicy::SharedPool`] *and* both split fields are set. `None`
    /// means the unified single-pool accounting is in effect.
    #[must_use]
    pub fn pool_split(&self) -> Option<(usize, usize)> {
        self.pool_slots()?;
        match (self.pool_slots_switch, self.pool_slots_endpoint) {
            (Some(s), Some(e)) => Some((s, e)),
            _ => None,
        }
    }

    /// The buffer layout implied by this configuration.
    #[must_use]
    pub(crate) fn layout(&self) -> BufferLayout {
        match self.flow_control {
            FlowControl::VirtualChannels {
                channels_per_network,
            } => {
                // Deadlock-free adaptive routing needs at least one extra
                // (adaptive) channel on top of the two escape channels
                // (Duato); the conventional static configuration needs two
                // (dateline) channels.
                let vcs = match self.routing {
                    RoutingPolicy::Static => channels_per_network.max(2),
                    RoutingPolicy::Adaptive => channels_per_network.max(3),
                };
                BufferLayout::PerVirtualChannel {
                    channels_per_network: vcs,
                    depth: self.vc_buffer_depth,
                    ejection_depth: self.ejection_queue_depth,
                    injection_depth: self.injection_queue_depth,
                }
            }
            FlowControl::SharedBuffers { buffers_per_port } => BufferLayout::Shared {
                depth: buffers_per_port,
                ejection_depth: self.ejection_queue_depth,
                injection_depth: self.injection_queue_depth,
            },
            FlowControl::WorstCaseBuffering => BufferLayout::Unbounded,
        }
    }
}

/// How switch-port buffering is organised; derived from
/// [`NetConfig::flow_control`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BufferLayout {
    /// One buffer per (virtual network, virtual channel) pair at every port.
    PerVirtualChannel {
        channels_per_network: usize,
        depth: usize,
        ejection_depth: usize,
        injection_depth: usize,
    },
    /// One shared buffer per port; every message class competes for it.
    Shared {
        depth: usize,
        ejection_depth: usize,
        injection_depth: usize,
    },
    /// One unbounded buffer per port (worst-case buffering).
    Unbounded,
}

/// Index of the escape virtual channel used before a packet crosses the
/// dateline of a ring.
pub(crate) const ESCAPE_VC_LOW: usize = 0;
/// Index of the escape virtual channel used after a packet crosses the
/// dateline of a ring.
pub(crate) const ESCAPE_VC_HIGH: usize = 1;
/// Index of the fully adaptive virtual channel (Duato's scheme).
pub(crate) const ADAPTIVE_VC: usize = 2;

impl BufferLayout {
    /// Number of buffers at each switch input port.
    pub(crate) fn buffers_per_port(&self) -> usize {
        match self {
            BufferLayout::PerVirtualChannel {
                channels_per_network,
                ..
            } => 4 * channels_per_network,
            BufferLayout::Shared { .. } | BufferLayout::Unbounded => 1,
        }
    }

    /// Capacity of each switch-port buffer (`None` = unbounded).
    pub(crate) fn buffer_capacity(&self) -> Option<usize> {
        match self {
            BufferLayout::PerVirtualChannel { depth, .. } => Some(*depth),
            BufferLayout::Shared { depth, .. } => Some(*depth),
            BufferLayout::Unbounded => None,
        }
    }

    /// Number of ejection queues per endpoint.
    pub(crate) fn ejection_queues(&self) -> usize {
        match self {
            BufferLayout::PerVirtualChannel { .. } => 4,
            BufferLayout::Shared { .. } | BufferLayout::Unbounded => 1,
        }
    }

    /// Capacity of each ejection queue (`None` = unbounded).
    pub(crate) fn ejection_capacity(&self) -> Option<usize> {
        match self {
            BufferLayout::PerVirtualChannel { ejection_depth, .. } => Some(*ejection_depth),
            BufferLayout::Shared { ejection_depth, .. } => Some(*ejection_depth),
            BufferLayout::Unbounded => None,
        }
    }

    /// Capacity of each injection queue (`None` = unbounded).
    pub(crate) fn injection_capacity(&self) -> Option<usize> {
        match self {
            BufferLayout::PerVirtualChannel {
                injection_depth, ..
            } => Some(*injection_depth),
            BufferLayout::Shared {
                injection_depth, ..
            } => Some(*injection_depth),
            BufferLayout::Unbounded => None,
        }
    }

    /// Number of virtual channels per virtual network (1 when buffers are
    /// shared).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn channels_per_network(&self) -> usize {
        match self {
            BufferLayout::PerVirtualChannel {
                channels_per_network,
                ..
            } => *channels_per_network,
            BufferLayout::Shared { .. } | BufferLayout::Unbounded => 1,
        }
    }

    /// The ejection queue a delivered packet of class `vnet` is placed in.
    pub(crate) fn ejection_index(&self, vnet: VirtualNetwork) -> usize {
        match self {
            BufferLayout::PerVirtualChannel { .. } => vnet.index(),
            BufferLayout::Shared { .. } | BufferLayout::Unbounded => 0,
        }
    }

    /// Port-buffer index for a packet of class `vnet` on virtual channel
    /// `vc`.
    pub(crate) fn buffer_index(&self, vnet: VirtualNetwork, vc: usize) -> usize {
        match self {
            BufferLayout::PerVirtualChannel {
                channels_per_network,
                ..
            } => {
                debug_assert!(vc < *channels_per_network);
                vnet.index() * channels_per_network + vc
            }
            BufferLayout::Shared { .. } | BufferLayout::Unbounded => 0,
        }
    }

    /// The virtual channel encoded by a port-buffer index.
    pub(crate) fn vc_of_buffer(&self, buffer_index: usize) -> usize {
        match self {
            BufferLayout::PerVirtualChannel {
                channels_per_network,
                ..
            } => buffer_index % channels_per_network,
            BufferLayout::Shared { .. } | BufferLayout::Unbounded => 0,
        }
    }

    /// The buffer a newly injected packet of class `vnet` starts in (escape
    /// channel 0 in VC mode; the shared buffer otherwise).
    pub(crate) fn injection_buffer_index(&self, vnet: VirtualNetwork) -> usize {
        self.buffer_index(vnet, ESCAPE_VC_LOW)
    }

    /// The downstream buffer index for a hop, implementing dateline
    /// virtual-channel allocation plus Duato's adaptive channel.
    ///
    /// * `vnet` — the packet's message class (virtual network);
    /// * `current_vc` — the virtual channel the packet occupies at the
    ///   current switch;
    /// * `incoming` — the port the packet arrived on at the current switch
    ///   (`Local` for freshly injected packets);
    /// * `outgoing` — the chosen output direction;
    /// * `crosses_dateline` — whether this hop crosses the ring's wrap-around
    ///   edge;
    /// * `use_adaptive_channel` — whether the routing decision chose the
    ///   fully adaptive channel (only meaningful with ≥ 3 VCs).
    pub(crate) fn next_buffer_index(
        &self,
        vnet: VirtualNetwork,
        current_vc: usize,
        incoming: Direction,
        outgoing: Direction,
        crosses_dateline: bool,
        use_adaptive_channel: bool,
    ) -> usize {
        match self {
            BufferLayout::Shared { .. } | BufferLayout::Unbounded => 0,
            BufferLayout::PerVirtualChannel {
                channels_per_network,
                ..
            } => {
                let vc = if use_adaptive_channel && *channels_per_network > ADAPTIVE_VC {
                    ADAPTIVE_VC
                } else {
                    // Escape (dateline) channels. Staying within the same
                    // dimension keeps the current escape channel unless this
                    // hop crosses the dateline; entering a new dimension (or
                    // leaving the injection port, or leaving the adaptive
                    // channel) restarts at the low escape channel, again
                    // unless the very first hop crosses the dateline.
                    let same_dimension = incoming != Direction::Local
                        && incoming.is_x() == outgoing.is_x()
                        && current_vc < ADAPTIVE_VC;
                    let base = if same_dimension {
                        current_vc
                    } else {
                        ESCAPE_VC_LOW
                    };
                    if crosses_dateline || base == ESCAPE_VC_HIGH {
                        ESCAPE_VC_HIGH
                    } else {
                        ESCAPE_VC_LOW
                    }
                };
                self.buffer_index(vnet, vc)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specsim_base::LinkBandwidth;

    #[test]
    fn conventional_layout_has_eight_vcs_per_port() {
        let cfg = NetConfig::conventional(16, LinkBandwidth::GB_3_2);
        let layout = cfg.layout();
        assert_eq!(layout.buffers_per_port(), 8); // 4 VNs x 2 VCs
        assert_eq!(layout.ejection_queues(), 4);
        assert_eq!(layout.channels_per_network(), 2);
    }

    #[test]
    fn adaptive_with_vcs_gets_an_extra_channel() {
        let mut cfg = NetConfig::conventional(16, LinkBandwidth::GB_3_2);
        cfg.routing = RoutingPolicy::Adaptive;
        let layout = cfg.layout();
        // Section 4: "To provide deadlock freedom with adaptive routing
        // requires at least one additional virtual channel."
        assert_eq!(layout.channels_per_network(), 3);
        assert_eq!(layout.buffers_per_port(), 12);
    }

    #[test]
    fn speculative_layout_is_one_shared_buffer() {
        let cfg = NetConfig::speculative(16, LinkBandwidth::MB_400, 16);
        let layout = cfg.layout();
        assert_eq!(layout.buffers_per_port(), 1);
        assert_eq!(layout.buffer_capacity(), Some(16));
        assert_eq!(layout.ejection_queues(), 1);
        assert_eq!(
            layout.ejection_index(VirtualNetwork::Response),
            layout.ejection_index(VirtualNetwork::Request)
        );
    }

    #[test]
    fn shared_pool_preset_keeps_the_vc_structure_but_pools_capacity() {
        let cfg = NetConfig::shared_pool(16, LinkBandwidth::MB_400, 24);
        assert_eq!(cfg.pool_slots(), Some(24));
        assert_eq!(cfg.routing, RoutingPolicy::Adaptive);
        // The buffer *structure* is the conventional adaptive VC layout
        // (4 networks x 3 channels); only the capacity accounting changes.
        assert_eq!(cfg.layout().buffers_per_port(), 12);
        assert_eq!(
            NetConfig::conventional(16, LinkBandwidth::MB_400).pool_slots(),
            None
        );
    }

    #[test]
    fn shared_pool_split_sets_both_budgets() {
        let cfg = NetConfig::shared_pool_split(16, LinkBandwidth::MB_400, 18, 6);
        assert_eq!(cfg.pool_slots(), Some(24));
        assert_eq!(cfg.pool_split(), Some((18, 6)));
        // The unified preset and every legacy constructor stay un-split.
        assert_eq!(
            NetConfig::shared_pool(16, LinkBandwidth::MB_400, 24).pool_split(),
            None
        );
        assert_eq!(
            NetConfig::conventional(16, LinkBandwidth::MB_400).pool_split(),
            None
        );
        // Split fields without the SharedPool policy are inert.
        let mut cfg2 = NetConfig::conventional(16, LinkBandwidth::MB_400);
        cfg2.pool_slots_switch = Some(8);
        cfg2.pool_slots_endpoint = Some(8);
        assert_eq!(cfg2.pool_split(), None);
    }

    #[test]
    fn worst_case_layout_is_unbounded() {
        let cfg = NetConfig::full_buffering(16, LinkBandwidth::MB_400, RoutingPolicy::Adaptive);
        let layout = cfg.layout();
        assert_eq!(layout.buffer_capacity(), None);
        assert_eq!(layout.ejection_capacity(), None);
        assert_eq!(layout.injection_capacity(), None);
    }

    #[test]
    fn buffer_index_roundtrips_vc() {
        let layout = BufferLayout::PerVirtualChannel {
            channels_per_network: 3,
            depth: 4,
            ejection_depth: 8,
            injection_depth: 8,
        };
        for vn in crate::packet::ALL_VIRTUAL_NETWORKS {
            for vc in 0..3 {
                let idx = layout.buffer_index(vn, vc);
                assert_eq!(layout.vc_of_buffer(idx), vc);
            }
        }
    }

    #[test]
    fn dateline_allocation_switches_to_high_channel() {
        let layout = BufferLayout::PerVirtualChannel {
            channels_per_network: 2,
            depth: 4,
            ejection_depth: 8,
            injection_depth: 8,
        };
        let vn = VirtualNetwork::Request;
        // First hop in a dimension without crossing the dateline stays low.
        let idx = layout.next_buffer_index(vn, 0, Direction::Local, Direction::East, false, false);
        assert_eq!(layout.vc_of_buffer(idx), ESCAPE_VC_LOW);
        // Crossing the dateline moves to the high channel.
        let idx = layout.next_buffer_index(vn, 0, Direction::West, Direction::East, true, false);
        assert_eq!(layout.vc_of_buffer(idx), ESCAPE_VC_HIGH);
        // Once on the high channel, later hops in the same dimension stay high.
        let idx = layout.next_buffer_index(vn, 1, Direction::West, Direction::East, false, false);
        assert_eq!(layout.vc_of_buffer(idx), ESCAPE_VC_HIGH);
        // Turning into a new dimension resets to the low channel.
        let idx = layout.next_buffer_index(vn, 1, Direction::West, Direction::North, false, false);
        assert_eq!(layout.vc_of_buffer(idx), ESCAPE_VC_LOW);
    }

    #[test]
    fn adaptive_channel_used_when_requested_and_available() {
        let layout = BufferLayout::PerVirtualChannel {
            channels_per_network: 3,
            depth: 4,
            ejection_depth: 8,
            injection_depth: 8,
        };
        let vn = VirtualNetwork::Response;
        let idx = layout.next_buffer_index(vn, 0, Direction::Local, Direction::East, true, true);
        assert_eq!(layout.vc_of_buffer(idx), ADAPTIVE_VC);
        // With only two channels the request is ignored and escape rules apply.
        let layout2 = BufferLayout::PerVirtualChannel {
            channels_per_network: 2,
            depth: 4,
            ejection_depth: 8,
            injection_depth: 8,
        };
        let idx = layout2.next_buffer_index(vn, 0, Direction::Local, Direction::East, true, true);
        assert_eq!(layout2.vc_of_buffer(idx), ESCAPE_VC_HIGH);
    }
}
