//! Network statistics.

use specsim_base::{Counter, Cycle, Histogram, Log2Histogram};

use crate::packet::VirtualNetwork;

/// Statistics gathered by a [`crate::Network`] instance.
#[derive(Debug, Clone)]
pub struct NetStats {
    /// Messages accepted into injection queues.
    pub injected: Counter,
    /// Messages handed to their destination's ejection queue.
    pub delivered: Counter,
    /// Messages delivered, by virtual network.
    pub delivered_per_vnet: [Counter; 4],
    /// Total in-fabric latency cycles, by virtual network (for per-class
    /// mean latencies, e.g. the snooping data torus's owner-transfer vs.
    /// writeback classes).
    pub latency_sum_per_vnet: [u64; 4],
    /// In-fabric latency distribution by virtual network, log2-bucketed for
    /// p50/p95/p99 reporting (the fixed-width [`NetStats::latency`]
    /// histogram tops out too early for congested tails).
    pub latency_hist_per_vnet: [Log2Histogram; 4],
    /// Link-to-link hops taken (excluding injection/ejection).
    pub hops: Counter,
    /// End-to-end latency (injection to ejection-queue arrival) in cycles.
    pub latency: Histogram,
    /// Injection attempts rejected because the injection queue was full.
    pub injection_rejects: Counter,
    /// Total busy cycles summed over every unidirectional link.
    pub link_busy_cycles: u64,
    /// Number of unidirectional links in the network.
    pub num_links: usize,
    /// Cycle at which statistics collection started (for utilization).
    pub window_start: Cycle,
}

impl NetStats {
    /// Creates an empty statistics block for a network with `num_links`
    /// unidirectional links.
    #[must_use]
    pub fn new(num_links: usize) -> Self {
        Self {
            injected: Counter::new(),
            delivered: Counter::new(),
            delivered_per_vnet: [Counter::new(); 4],
            latency_sum_per_vnet: [0; 4],
            latency_hist_per_vnet: Default::default(),
            hops: Counter::new(),
            latency: Histogram::new(50, 200),
            injection_rejects: Counter::new(),
            link_busy_cycles: 0,
            num_links,
            window_start: 0,
        }
    }

    /// Records a delivery of a packet of class `vnet` that spent `latency`
    /// cycles in the network.
    pub(crate) fn record_delivery(&mut self, vnet: VirtualNetwork, latency: u64) {
        self.delivered.incr();
        self.delivered_per_vnet[vnet.index()].incr();
        self.latency_sum_per_vnet[vnet.index()] += latency;
        self.latency_hist_per_vnet[vnet.index()].record(latency);
        self.latency.record(latency);
    }

    /// Mean in-fabric latency of messages on one virtual network, in cycles
    /// (0 when none were delivered).
    #[must_use]
    pub fn mean_latency_of(&self, vnet: VirtualNetwork) -> f64 {
        let n = self.delivered_per_vnet[vnet.index()].get();
        if n == 0 {
            0.0
        } else {
            self.latency_sum_per_vnet[vnet.index()] as f64 / n as f64
        }
    }

    /// Mean utilization across all links over `[window_start, now]`.
    #[must_use]
    pub fn mean_link_utilization(&self, now: Cycle) -> f64 {
        if now <= self.window_start || self.num_links == 0 {
            return 0.0;
        }
        let window = (now - self.window_start) as f64;
        (self.link_busy_cycles as f64 / (window * self.num_links as f64)).clamp(0.0, 1.0)
    }

    /// Mean end-to-end message latency in cycles.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// Messages still unaccounted for (injected but not delivered).
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.injected.get().saturating_sub(self.delivered.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_normalised_by_links_and_window() {
        let mut s = NetStats::new(4);
        s.link_busy_cycles = 200;
        // 4 links over 100 cycles = 400 link-cycles; 200 busy = 50%.
        assert!((s.mean_link_utilization(100) - 0.5).abs() < 1e-12);
        assert_eq!(s.mean_link_utilization(0), 0.0);
    }

    #[test]
    fn delivery_records_latency_and_class() {
        let mut s = NetStats::new(1);
        s.record_delivery(VirtualNetwork::Response, 120);
        s.record_delivery(VirtualNetwork::Response, 80);
        assert_eq!(s.delivered.get(), 2);
        assert_eq!(
            s.delivered_per_vnet[VirtualNetwork::Response.index()].get(),
            2
        );
        assert!((s.mean_latency() - 100.0).abs() < 1e-12);
        let hist = &s.latency_hist_per_vnet[VirtualNetwork::Response.index()];
        assert_eq!(hist.count(), 2);
        assert!((hist.mean() - 100.0).abs() < 1e-12);
        assert_eq!(
            s.latency_hist_per_vnet[VirtualNetwork::Request.index()].count(),
            0
        );
    }

    #[test]
    fn per_vnet_mean_latency_separates_classes() {
        let mut s = NetStats::new(1);
        s.record_delivery(VirtualNetwork::Response, 90);
        s.record_delivery(VirtualNetwork::Response, 110);
        s.record_delivery(VirtualNetwork::Request, 720);
        assert!((s.mean_latency_of(VirtualNetwork::Response) - 100.0).abs() < 1e-12);
        assert!((s.mean_latency_of(VirtualNetwork::Request) - 720.0).abs() < 1e-12);
        assert_eq!(s.mean_latency_of(VirtualNetwork::FinalAck), 0.0);
    }

    #[test]
    fn outstanding_counts_in_flight() {
        let mut s = NetStats::new(1);
        s.injected.add(5);
        s.record_delivery(VirtualNetwork::Request, 10);
        assert_eq!(s.outstanding(), 4);
    }
}
