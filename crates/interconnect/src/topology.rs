//! 2D bidirectional torus topology.
//!
//! The target system (Section 3.1) connects its 16 nodes with a 4×4
//! two-dimensional torus: every switch has four neighbours (east, west,
//! north, south) with wrap-around links, plus a local port to its node's
//! network interface.

use specsim_base::NodeId;

/// A switch coordinate in the torus: `x` grows eastward, `y` grows northward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column index, `0..side`.
    pub x: usize,
    /// Row index, `0..side`.
    pub y: usize,
}

/// One of the five ports of a torus switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Towards increasing `x` (with wrap-around).
    East,
    /// Towards decreasing `x` (with wrap-around).
    West,
    /// Towards increasing `y` (with wrap-around).
    North,
    /// Towards decreasing `y` (with wrap-around).
    South,
    /// The local port connecting the switch to its node's network interface.
    Local,
}

/// The four link directions (everything but [`Direction::Local`]).
pub const LINK_DIRECTIONS: [Direction; 4] = [
    Direction::East,
    Direction::West,
    Direction::North,
    Direction::South,
];

impl Direction {
    /// Dense index of this direction, `0..5` (Local is 4).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::North => 2,
            Direction::South => 3,
            Direction::Local => 4,
        }
    }

    /// The direction a message arrives from when it was sent in `self`'s
    /// direction (e.g. a message sent East arrives at the neighbour's West
    /// port).
    #[must_use]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::Local => Direction::Local,
        }
    }

    /// True for the two X-dimension directions.
    #[must_use]
    pub fn is_x(self) -> bool {
        matches!(self, Direction::East | Direction::West)
    }
}

/// A square 2D torus of `side × side` switches, one per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Torus {
    side: usize,
}

impl Torus {
    /// Creates a torus for `num_nodes` nodes; `num_nodes` must be a perfect
    /// square (the 16-node target machine is 4×4).
    #[must_use]
    pub fn new(num_nodes: usize) -> Self {
        let side = (num_nodes as f64).sqrt().round() as usize;
        assert!(
            side * side == num_nodes && side > 0,
            "torus requires a positive perfect-square node count, got {num_nodes}"
        );
        Self { side }
    }

    /// Side length of the torus.
    #[must_use]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Total number of switches/nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.side * self.side
    }

    /// Coordinate of a node's switch.
    #[must_use]
    pub fn coord(&self, node: NodeId) -> Coord {
        let i = node.index();
        assert!(i < self.num_nodes(), "node {node} outside torus");
        Coord {
            x: i % self.side,
            y: i / self.side,
        }
    }

    /// Node at a coordinate.
    #[must_use]
    pub fn node_at(&self, c: Coord) -> NodeId {
        assert!(c.x < self.side && c.y < self.side, "coordinate off torus");
        NodeId::from(c.y * self.side + c.x)
    }

    /// The neighbour reached by leaving `node` in direction `dir`
    /// (wrap-around included). `Local` returns the node itself.
    #[must_use]
    pub fn neighbor(&self, node: NodeId, dir: Direction) -> NodeId {
        let c = self.coord(node);
        let s = self.side;
        let n = match dir {
            Direction::East => Coord {
                x: (c.x + 1) % s,
                y: c.y,
            },
            Direction::West => Coord {
                x: (c.x + s - 1) % s,
                y: c.y,
            },
            Direction::North => Coord {
                x: c.x,
                y: (c.y + 1) % s,
            },
            Direction::South => Coord {
                x: c.x,
                y: (c.y + s - 1) % s,
            },
            Direction::Local => c,
        };
        self.node_at(n)
    }

    /// Signed shortest offset from `from` to `to` along one ring of length
    /// `side`: positive means travel in the increasing direction. Ties (exact
    /// half-way) are resolved to the positive direction.
    fn ring_offset(&self, from: usize, to: usize) -> isize {
        let s = self.side as isize;
        let mut d = to as isize - from as isize;
        if d > s / 2 {
            d -= s;
        } else if d < -(s / 2) {
            d += s;
        } else if d == -(s / 2) {
            // Exactly half-way: prefer the positive direction for determinism.
            d = s / 2;
        }
        d
    }

    /// The productive directions from `from` towards `to`: the set of
    /// directions that reduce the remaining distance. Empty when the nodes
    /// are the same.
    #[must_use]
    pub fn productive_directions(&self, from: NodeId, to: NodeId) -> Vec<Direction> {
        let a = self.coord(from);
        let b = self.coord(to);
        let mut dirs = Vec::with_capacity(2);
        let dx = self.ring_offset(a.x, b.x);
        let dy = self.ring_offset(a.y, b.y);
        if dx > 0 {
            dirs.push(Direction::East);
        } else if dx < 0 {
            dirs.push(Direction::West);
        }
        if dy > 0 {
            dirs.push(Direction::North);
        } else if dy < 0 {
            dirs.push(Direction::South);
        }
        dirs
    }

    /// Minimal hop distance between two nodes.
    #[must_use]
    pub fn distance(&self, from: NodeId, to: NodeId) -> usize {
        let a = self.coord(from);
        let b = self.coord(to);
        (self.ring_offset(a.x, b.x).unsigned_abs()) + (self.ring_offset(a.y, b.y).unsigned_abs())
    }

    /// The dimension-order (X then Y) next hop from `from` towards `to`;
    /// `Local` when already at the destination. This is the static route.
    #[must_use]
    pub fn dimension_order_direction(&self, from: NodeId, to: NodeId) -> Direction {
        let a = self.coord(from);
        let b = self.coord(to);
        let dx = self.ring_offset(a.x, b.x);
        if dx > 0 {
            return Direction::East;
        }
        if dx < 0 {
            return Direction::West;
        }
        let dy = self.ring_offset(a.y, b.y);
        if dy > 0 {
            return Direction::North;
        }
        if dy < 0 {
            return Direction::South;
        }
        Direction::Local
    }

    /// True when the hop from `node` in direction `dir` crosses the
    /// wrap-around edge of its ring. Used by dateline virtual-channel
    /// allocation: a packet that crosses the dateline must move to the
    /// higher-numbered virtual channel to break the ring's cyclic dependency.
    #[must_use]
    pub fn crosses_dateline(&self, node: NodeId, dir: Direction) -> bool {
        let c = self.coord(node);
        let s = self.side;
        match dir {
            Direction::East => c.x == s - 1,
            Direction::West => c.x == 0,
            Direction::North => c.y == s - 1,
            Direction::South => c.y == 0,
            Direction::Local => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t4() -> Torus {
        Torus::new(16)
    }

    #[test]
    fn coord_roundtrip() {
        let t = t4();
        for i in 0..16 {
            let n = NodeId::from(i);
            assert_eq!(t.node_at(t.coord(n)), n);
        }
    }

    #[test]
    fn neighbors_wrap_around() {
        let t = t4();
        // Node 0 is at (0,0).
        assert_eq!(t.neighbor(NodeId(0), Direction::West), NodeId(3));
        assert_eq!(t.neighbor(NodeId(0), Direction::South), NodeId(12));
        assert_eq!(t.neighbor(NodeId(0), Direction::East), NodeId(1));
        assert_eq!(t.neighbor(NodeId(0), Direction::North), NodeId(4));
        assert_eq!(t.neighbor(NodeId(0), Direction::Local), NodeId(0));
    }

    #[test]
    fn neighbor_opposite_is_inverse() {
        let t = t4();
        for i in 0..16 {
            let n = NodeId::from(i);
            for dir in LINK_DIRECTIONS {
                let m = t.neighbor(n, dir);
                assert_eq!(t.neighbor(m, dir.opposite()), n);
            }
        }
    }

    #[test]
    fn distance_is_minimal_manhattan_on_rings() {
        let t = t4();
        assert_eq!(t.distance(NodeId(0), NodeId(0)), 0);
        assert_eq!(t.distance(NodeId(0), NodeId(1)), 1);
        assert_eq!(t.distance(NodeId(0), NodeId(3)), 1); // wrap
        assert_eq!(t.distance(NodeId(0), NodeId(15)), 2); // (3,3) via wraps
        assert_eq!(t.distance(NodeId(0), NodeId(10)), 4); // (2,2): 2+2
    }

    #[test]
    fn dimension_order_reaches_destination() {
        let t = t4();
        for from in 0..16 {
            for to in 0..16 {
                let mut cur = NodeId::from(from);
                let dst = NodeId::from(to);
                let mut hops = 0;
                while cur != dst {
                    let dir = t.dimension_order_direction(cur, dst);
                    assert_ne!(dir, Direction::Local);
                    cur = t.neighbor(cur, dir);
                    hops += 1;
                    assert!(hops <= 4, "DOR route too long on 4x4 torus");
                }
                assert_eq!(hops, t.distance(NodeId::from(from), dst));
            }
        }
    }

    #[test]
    fn productive_directions_reduce_distance() {
        let t = t4();
        for from in 0..16 {
            for to in 0..16 {
                let f = NodeId::from(from);
                let d = NodeId::from(to);
                let dirs = t.productive_directions(f, d);
                if from == to {
                    assert!(dirs.is_empty());
                }
                for dir in dirs {
                    let next = t.neighbor(f, dir);
                    assert_eq!(t.distance(next, d), t.distance(f, d) - 1);
                }
            }
        }
    }

    #[test]
    fn dateline_crossings_only_on_wrap_links() {
        let t = t4();
        assert!(t.crosses_dateline(NodeId(3), Direction::East));
        assert!(!t.crosses_dateline(NodeId(2), Direction::East));
        assert!(t.crosses_dateline(NodeId(0), Direction::West));
        assert!(t.crosses_dateline(NodeId(12), Direction::North));
        assert!(t.crosses_dateline(NodeId(0), Direction::South));
        assert!(!t.crosses_dateline(NodeId(5), Direction::Local));
    }

    #[test]
    #[should_panic(expected = "perfect-square")]
    fn non_square_node_count_panics() {
        let _ = Torus::new(12);
    }

    proptest! {
        #[test]
        fn adaptive_and_static_routes_agree_on_distance(
            from in 0usize..16, to in 0usize..16
        ) {
            let t = t4();
            let f = NodeId::from(from);
            let d = NodeId::from(to);
            // Following any productive direction repeatedly reaches the
            // destination in exactly `distance` hops.
            let mut cur = f;
            let mut hops = 0;
            while cur != d {
                let dirs = t.productive_directions(cur, d);
                prop_assert!(!dirs.is_empty());
                cur = t.neighbor(cur, dirs[0]);
                hops += 1;
            }
            prop_assert_eq!(hops, t.distance(f, d));
        }
    }
}
