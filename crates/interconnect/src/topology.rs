//! 2D bidirectional rectangular torus topology.
//!
//! The target system (Section 3.1) connects its 16 nodes with a 4×4
//! two-dimensional torus: every switch has four neighbours (east, west,
//! north, south) with wrap-around links, plus a local port to its node's
//! network interface. The model generalises the paper's square machine to a
//! `width × height` rectangular torus so scaling experiments can sweep node
//! counts that have no integer square root (8 = 4×2, 32 = 8×4, 128 = 16×8).
//! Each axis is an independent ring: X rings have length `width`, Y rings
//! length `height`, and the dateline virtual-channel rule applies per ring.

use specsim_base::{squarest_torus_dims, NodeId};

/// A switch coordinate in the torus: `x` grows eastward, `y` grows northward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column index, `0..width`.
    pub x: usize,
    /// Row index, `0..height`.
    pub y: usize,
}

/// One of the five ports of a torus switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Towards increasing `x` (with wrap-around).
    East,
    /// Towards decreasing `x` (with wrap-around).
    West,
    /// Towards increasing `y` (with wrap-around).
    North,
    /// Towards decreasing `y` (with wrap-around).
    South,
    /// The local port connecting the switch to its node's network interface.
    Local,
}

/// The four link directions (everything but [`Direction::Local`]).
pub const LINK_DIRECTIONS: [Direction; 4] = [
    Direction::East,
    Direction::West,
    Direction::North,
    Direction::South,
];

impl Direction {
    /// Dense index of this direction, `0..5` (Local is 4).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::North => 2,
            Direction::South => 3,
            Direction::Local => 4,
        }
    }

    /// The direction a message arrives from when it was sent in `self`'s
    /// direction (e.g. a message sent East arrives at the neighbour's West
    /// port).
    #[must_use]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::Local => Direction::Local,
        }
    }

    /// True for the two X-dimension directions.
    #[must_use]
    pub fn is_x(self) -> bool {
        matches!(self, Direction::East | Direction::West)
    }
}

/// A fixed-capacity inline list of directions. A 2D torus hop never has more
/// than four candidates, so route computation can stay allocation-free on the
/// per-packet forwarding path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirList {
    dirs: [Direction; 4],
    len: u8,
}

impl DirList {
    /// An empty list.
    #[must_use]
    pub fn new() -> Self {
        Self {
            dirs: [Direction::Local; 4],
            len: 0,
        }
    }

    /// A single-element list.
    #[must_use]
    pub fn of(dir: Direction) -> Self {
        let mut list = Self::new();
        list.push(dir);
        list
    }

    /// Appends a direction. Panics past the 4-direction capacity.
    pub fn push(&mut self, dir: Direction) {
        self.dirs[usize::from(self.len)] = dir;
        self.len += 1;
    }

    /// The directions as a slice, in insertion (preference) order.
    #[must_use]
    pub fn as_slice(&self) -> &[Direction] {
        &self.dirs[..usize::from(self.len)]
    }

    /// Sorts the list by the given key, preserving determinism via total keys.
    pub fn sort_by_key<K: Ord>(&mut self, key: impl FnMut(&Direction) -> K) {
        self.dirs[..usize::from(self.len)].sort_by_key(key);
    }
}

impl Default for DirList {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for DirList {
    type Target = [Direction];

    fn deref(&self) -> &[Direction] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a DirList {
    type Item = &'a Direction;
    type IntoIter = std::slice::Iter<'a, Direction>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A rectangular 2D torus of `width × height` switches, one per node.
///
/// Both dimensions must be at least 2: a 1-wide ring degenerates (a switch
/// would be its own east and west neighbour) and breaks both dimension-order
/// routing and the dateline rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Torus {
    width: usize,
    height: usize,
}

impl Torus {
    /// Creates the squarest torus for `num_nodes` nodes (the 16-node target
    /// machine is 4×4; 32 nodes form an 8×4 torus). Panics when `num_nodes`
    /// has no `W × H` factorisation with both dimensions ≥ 2 (zero, primes).
    #[must_use]
    pub fn new(num_nodes: usize) -> Self {
        let (width, height) = squarest_torus_dims(num_nodes).unwrap_or_else(|| {
            panic!(
                "torus requires a node count with a W x H factorisation \
                 (both >= 2), got {num_nodes}"
            )
        });
        Self { width, height }
    }

    /// Creates a torus with explicit dimensions. Panics when either dimension
    /// is a degenerate ring of length < 2.
    #[must_use]
    pub fn rectangular(width: usize, height: usize) -> Self {
        assert!(
            width >= 2 && height >= 2,
            "torus rings must have length >= 2, got {width}x{height}"
        );
        Self { width, height }
    }

    /// Length of the X rings (number of columns).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Length of the Y rings (number of rows).
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Both dimensions as `(width, height)`.
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Total number of switches/nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.width * self.height
    }

    /// Coordinate of a node's switch.
    #[must_use]
    pub fn coord(&self, node: NodeId) -> Coord {
        let i = node.index();
        assert!(i < self.num_nodes(), "node {node} outside torus");
        Coord {
            x: i % self.width,
            y: i / self.width,
        }
    }

    /// Node at a coordinate.
    #[must_use]
    pub fn node_at(&self, c: Coord) -> NodeId {
        assert!(
            c.x < self.width && c.y < self.height,
            "coordinate off torus"
        );
        NodeId::from(c.y * self.width + c.x)
    }

    /// The neighbour reached by leaving `node` in direction `dir`
    /// (wrap-around included). `Local` returns the node itself.
    #[must_use]
    pub fn neighbor(&self, node: NodeId, dir: Direction) -> NodeId {
        let c = self.coord(node);
        let (w, h) = (self.width, self.height);
        let n = match dir {
            Direction::East => Coord {
                x: (c.x + 1) % w,
                y: c.y,
            },
            Direction::West => Coord {
                x: (c.x + w - 1) % w,
                y: c.y,
            },
            Direction::North => Coord {
                x: c.x,
                y: (c.y + 1) % h,
            },
            Direction::South => Coord {
                x: c.x,
                y: (c.y + h - 1) % h,
            },
            Direction::Local => c,
        };
        self.node_at(n)
    }

    /// Signed shortest offset from `from` to `to` along one ring of length
    /// `len`: positive means travel in the increasing direction. Ties (exact
    /// half-way) are resolved to the positive direction.
    fn ring_offset(len: usize, from: usize, to: usize) -> isize {
        let s = len as isize;
        let mut d = to as isize - from as isize;
        // Compare doubled offsets so the half-way cases are exact for odd
        // ring lengths too (`s / 2` truncates: on a 5-ring, -2 is strictly
        // shorter than +3 and must not be treated as a tie).
        if 2 * d > s {
            d -= s;
        } else if 2 * d < -s {
            d += s;
        } else if 2 * d == -s {
            // Exactly half-way: prefer the positive direction for determinism.
            d = s / 2;
        }
        d
    }

    /// The signed shortest X-ring offset from `a` to `b`.
    fn dx(&self, a: Coord, b: Coord) -> isize {
        Self::ring_offset(self.width, a.x, b.x)
    }

    /// The signed shortest Y-ring offset from `a` to `b`.
    fn dy(&self, a: Coord, b: Coord) -> isize {
        Self::ring_offset(self.height, a.y, b.y)
    }

    /// The productive directions from `from` towards `to`: the set of
    /// directions that reduce the remaining distance. Empty when the nodes
    /// are the same.
    #[must_use]
    pub fn productive_directions(&self, from: NodeId, to: NodeId) -> DirList {
        let a = self.coord(from);
        let b = self.coord(to);
        let mut dirs = DirList::new();
        let dx = self.dx(a, b);
        let dy = self.dy(a, b);
        if dx > 0 {
            dirs.push(Direction::East);
        } else if dx < 0 {
            dirs.push(Direction::West);
        }
        if dy > 0 {
            dirs.push(Direction::North);
        } else if dy < 0 {
            dirs.push(Direction::South);
        }
        dirs
    }

    /// Minimal hop distance between two nodes.
    #[must_use]
    pub fn distance(&self, from: NodeId, to: NodeId) -> usize {
        let a = self.coord(from);
        let b = self.coord(to);
        self.dx(a, b).unsigned_abs() + self.dy(a, b).unsigned_abs()
    }

    /// The dimension-order (X then Y) next hop from `from` towards `to`;
    /// `Local` when already at the destination. This is the static route.
    #[must_use]
    pub fn dimension_order_direction(&self, from: NodeId, to: NodeId) -> Direction {
        let a = self.coord(from);
        let b = self.coord(to);
        let dx = self.dx(a, b);
        if dx > 0 {
            return Direction::East;
        }
        if dx < 0 {
            return Direction::West;
        }
        let dy = self.dy(a, b);
        if dy > 0 {
            return Direction::North;
        }
        if dy < 0 {
            return Direction::South;
        }
        Direction::Local
    }

    /// True when the hop from `node` in direction `dir` crosses the
    /// wrap-around edge of its ring. Used by dateline virtual-channel
    /// allocation: a packet that crosses the dateline must move to the
    /// higher-numbered virtual channel to break the ring's cyclic dependency.
    /// Each axis has its own ring length, so the dateline sits at
    /// `width - 1 → 0` on X rings and `height - 1 → 0` on Y rings.
    #[must_use]
    pub fn crosses_dateline(&self, node: NodeId, dir: Direction) -> bool {
        let c = self.coord(node);
        match dir {
            Direction::East => c.x == self.width - 1,
            Direction::West => c.x == 0,
            Direction::North => c.y == self.height - 1,
            Direction::South => c.y == 0,
            Direction::Local => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t4() -> Torus {
        Torus::new(16)
    }

    #[test]
    fn coord_roundtrip() {
        let t = t4();
        for i in 0..16 {
            let n = NodeId::from(i);
            assert_eq!(t.node_at(t.coord(n)), n);
        }
    }

    #[test]
    fn square_factorisation_recovers_the_papers_machine() {
        let t = t4();
        assert_eq!(t.dims(), (4, 4));
        assert_eq!(t.num_nodes(), 16);
        assert_eq!(Torus::new(8).dims(), (4, 2));
        assert_eq!(Torus::new(32).dims(), (8, 4));
        assert_eq!(Torus::new(128).dims(), (16, 8));
    }

    #[test]
    fn neighbors_wrap_around() {
        let t = t4();
        // Node 0 is at (0,0).
        assert_eq!(t.neighbor(NodeId(0), Direction::West), NodeId(3));
        assert_eq!(t.neighbor(NodeId(0), Direction::South), NodeId(12));
        assert_eq!(t.neighbor(NodeId(0), Direction::East), NodeId(1));
        assert_eq!(t.neighbor(NodeId(0), Direction::North), NodeId(4));
        assert_eq!(t.neighbor(NodeId(0), Direction::Local), NodeId(0));
    }

    #[test]
    fn rectangular_neighbors_wrap_per_axis() {
        // 4×2: row 0 is nodes 0..4, row 1 is nodes 4..8.
        let t = Torus::rectangular(4, 2);
        assert_eq!(t.neighbor(NodeId(0), Direction::West), NodeId(3));
        assert_eq!(t.neighbor(NodeId(0), Direction::East), NodeId(1));
        // The Y ring has length 2: North and South from any node coincide.
        assert_eq!(t.neighbor(NodeId(0), Direction::North), NodeId(4));
        assert_eq!(t.neighbor(NodeId(0), Direction::South), NodeId(4));
        assert_eq!(t.neighbor(NodeId(7), Direction::East), NodeId(4));
    }

    #[test]
    fn neighbor_opposite_is_inverse() {
        let t = t4();
        for i in 0..16 {
            let n = NodeId::from(i);
            for dir in LINK_DIRECTIONS {
                let m = t.neighbor(n, dir);
                assert_eq!(t.neighbor(m, dir.opposite()), n);
            }
        }
    }

    #[test]
    fn distance_is_minimal_manhattan_on_rings() {
        let t = t4();
        assert_eq!(t.distance(NodeId(0), NodeId(0)), 0);
        assert_eq!(t.distance(NodeId(0), NodeId(1)), 1);
        assert_eq!(t.distance(NodeId(0), NodeId(3)), 1); // wrap
        assert_eq!(t.distance(NodeId(0), NodeId(15)), 2); // (3,3) via wraps
        assert_eq!(t.distance(NodeId(0), NodeId(10)), 4); // (2,2): 2+2
    }

    #[test]
    fn rectangular_distance_uses_per_axis_ring_lengths() {
        let t = Torus::rectangular(8, 4);
        // (0,0) to (4,0): exactly half the X ring, 4 hops either way.
        assert_eq!(t.distance(NodeId(0), NodeId(4)), 4);
        // (0,0) to (7,0): 1 hop across the X wrap.
        assert_eq!(t.distance(NodeId(0), NodeId(7)), 1);
        // (0,0) to (0,3): 1 hop across the Y wrap (ring length 4).
        assert_eq!(t.distance(NodeId(0), NodeId(24)), 1);
        // (0,0) to (4,2): 4 + 2.
        assert_eq!(t.distance(NodeId(0), NodeId(20)), 6);
    }

    #[test]
    fn dimension_order_reaches_destination() {
        let t = t4();
        for from in 0..16 {
            for to in 0..16 {
                let mut cur = NodeId::from(from);
                let dst = NodeId::from(to);
                let mut hops = 0;
                while cur != dst {
                    let dir = t.dimension_order_direction(cur, dst);
                    assert_ne!(dir, Direction::Local);
                    cur = t.neighbor(cur, dir);
                    hops += 1;
                    assert!(hops <= 4, "DOR route too long on 4x4 torus");
                }
                assert_eq!(hops, t.distance(NodeId::from(from), dst));
            }
        }
    }

    #[test]
    fn productive_directions_reduce_distance() {
        let t = t4();
        for from in 0..16 {
            for to in 0..16 {
                let f = NodeId::from(from);
                let d = NodeId::from(to);
                let dirs = t.productive_directions(f, d);
                if from == to {
                    assert!(dirs.is_empty());
                }
                for &dir in &dirs {
                    let next = t.neighbor(f, dir);
                    assert_eq!(t.distance(next, d), t.distance(f, d) - 1);
                }
            }
        }
    }

    #[test]
    fn dateline_crossings_only_on_wrap_links() {
        let t = t4();
        assert!(t.crosses_dateline(NodeId(3), Direction::East));
        assert!(!t.crosses_dateline(NodeId(2), Direction::East));
        assert!(t.crosses_dateline(NodeId(0), Direction::West));
        assert!(t.crosses_dateline(NodeId(12), Direction::North));
        assert!(t.crosses_dateline(NodeId(0), Direction::South));
        assert!(!t.crosses_dateline(NodeId(5), Direction::Local));
    }

    #[test]
    fn rectangular_datelines_sit_at_each_axis_edge() {
        let t = Torus::rectangular(8, 4);
        assert!(t.crosses_dateline(NodeId(7), Direction::East)); // x = 7
        assert!(!t.crosses_dateline(NodeId(3), Direction::East)); // x = 3
        assert!(t.crosses_dateline(NodeId(24), Direction::North)); // y = 3
        assert!(!t.crosses_dateline(NodeId(8), Direction::North)); // y = 1
    }

    #[test]
    #[should_panic(expected = "factorisation")]
    fn zero_node_count_panics() {
        let _ = Torus::new(0);
    }

    #[test]
    #[should_panic(expected = "factorisation")]
    fn prime_node_count_panics() {
        let _ = Torus::new(13);
    }

    #[test]
    #[should_panic(expected = "length >= 2")]
    fn one_wide_ring_panics() {
        let _ = Torus::rectangular(8, 1);
    }

    proptest! {
        #[test]
        fn adaptive_and_static_routes_agree_on_distance(
            from in 0usize..16, to in 0usize..16
        ) {
            let t = t4();
            let f = NodeId::from(from);
            let d = NodeId::from(to);
            // Following any productive direction repeatedly reaches the
            // destination in exactly `distance` hops.
            let mut cur = f;
            let mut hops = 0;
            while cur != d {
                let dirs = t.productive_directions(cur, d);
                prop_assert!(!dirs.is_empty());
                cur = t.neighbor(cur, dirs[0]);
                hops += 1;
            }
            prop_assert_eq!(hops, t.distance(f, d));
        }

        // Rectangular-torus invariants over arbitrary 2 ≤ W, H ≤ 12 and node
        // pairs (`from_raw`/`to_raw` are reduced modulo the node count so the
        // pair is always on the torus).
        #[test]
        fn rect_neighbor_opposite_is_inverse(
            w in 2usize..13, h in 2usize..13, raw in 0usize..144
        ) {
            let t = Torus::rectangular(w, h);
            let n = NodeId::from(raw % t.num_nodes());
            for dir in LINK_DIRECTIONS {
                let m = t.neighbor(n, dir);
                prop_assert_eq!(t.neighbor(m, dir.opposite()), n);
            }
        }

        #[test]
        fn rect_distance_is_sum_of_minimal_ring_offsets(
            w in 2usize..13, h in 2usize..13,
            from_raw in 0usize..144, to_raw in 0usize..144
        ) {
            let t = Torus::rectangular(w, h);
            let f = NodeId::from(from_raw % t.num_nodes());
            let d = NodeId::from(to_raw % t.num_nodes());
            let (a, b) = (t.coord(f), t.coord(d));
            let ring_min = |len: usize, p: usize, q: usize| {
                let fwd = (q + len - p) % len;
                fwd.min(len - fwd)
            };
            let expected = ring_min(w, a.x, b.x) + ring_min(h, a.y, b.y);
            prop_assert_eq!(t.distance(f, d), expected);
            // Distance is symmetric even when a tie-broken half-ring offset
            // routes the two directions differently.
            prop_assert_eq!(t.distance(d, f), expected);
        }

        #[test]
        fn rect_dimension_order_reaches_destination_in_distance_hops(
            w in 2usize..13, h in 2usize..13,
            from_raw in 0usize..144, to_raw in 0usize..144
        ) {
            let t = Torus::rectangular(w, h);
            let f = NodeId::from(from_raw % t.num_nodes());
            let d = NodeId::from(to_raw % t.num_nodes());
            let mut cur = f;
            let mut hops = 0;
            while cur != d {
                let dir = t.dimension_order_direction(cur, d);
                prop_assert!(dir != Direction::Local);
                cur = t.neighbor(cur, dir);
                hops += 1;
                prop_assert!(hops <= t.num_nodes(), "DOR route does not terminate");
            }
            prop_assert_eq!(hops, t.distance(f, d));
            prop_assert_eq!(
                t.dimension_order_direction(d, d),
                Direction::Local
            );
        }

        #[test]
        fn rect_productive_directions_strictly_reduce_distance(
            w in 2usize..13, h in 2usize..13,
            from_raw in 0usize..144, to_raw in 0usize..144
        ) {
            let t = Torus::rectangular(w, h);
            let f = NodeId::from(from_raw % t.num_nodes());
            let d = NodeId::from(to_raw % t.num_nodes());
            let dirs = t.productive_directions(f, d);
            if f == d {
                prop_assert!(dirs.is_empty());
            } else {
                prop_assert!(!dirs.is_empty());
            }
            for &dir in &dirs {
                let next = t.neighbor(f, dir);
                prop_assert_eq!(t.distance(next, d) + 1, t.distance(f, d));
            }
        }
    }
}
