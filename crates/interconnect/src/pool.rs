//! Shared buffer-slot pools for the speculative interconnect
//! ([`specsim_base::BufferPolicy::SharedPool`]).
//!
//! The conventional design sizes each virtual network/channel buffer for its
//! worst case; the Section 4 speculation replaces that analysis with one
//! shared pool of message slots per node, covering every input-port buffer
//! and ejection queue of that node's switch/endpoint. Any class may use any
//! slot, so the pool can be sized near the *common case* — and
//! buffer-dependency cycles across classes become possible (Figures 2–3).
//!
//! After a deadlock-detected recovery, the forward-progress measure
//! ([`SlotPool::set_reservation`]) partitions part of the pool back into
//! per-virtual-network reservations — the paper's "revert to conservative"
//! recipe — so re-execution cannot immediately re-create the same cycle;
//! the reservation is lifted once the window expires.

/// Number of virtual networks (message classes) the pool accounts for.
const NUM_VNETS: usize = 4;

/// Per-node shared slot pool: tracks, per virtual network, how many of the
/// node's `total` message slots are held, and optionally guarantees each
/// network a reserved minimum (the conservative re-execution mode).
///
/// Accounting model with a reservation of `r` slots per network: each
/// network owns `r` private slots; the remaining `total - 4*r` slots are
/// shared. A network holding `u` slots consumes `min(u, r)` private slots
/// and `max(0, u - r)` shared slots. With `r = 0` (normal operation) the
/// pool degenerates to a single occupancy counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotPool {
    total: usize,
    in_use: [usize; NUM_VNETS],
    reserved_per_vnet: usize,
}

impl SlotPool {
    /// A pool of `total` slots, fully shared (no reservations).
    #[must_use]
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "a shared pool needs at least one slot");
        Self {
            total,
            in_use: [0; NUM_VNETS],
            reserved_per_vnet: 0,
        }
    }

    /// Total slots in the pool.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Slots currently held across all networks.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.in_use.iter().sum()
    }

    /// Slots currently held by one network.
    #[must_use]
    pub fn in_use(&self, vnet: usize) -> usize {
        self.in_use[vnet]
    }

    /// The per-network reservation currently in force (0 = fully shared).
    #[must_use]
    pub fn reservation(&self) -> usize {
        self.reserved_per_vnet
    }

    /// Shared (unreserved) slots currently consumed.
    fn shared_used(&self) -> usize {
        self.in_use
            .iter()
            .map(|&u| u.saturating_sub(self.reserved_per_vnet))
            .sum()
    }

    /// True when a message of class `vnet` may take a slot: a physical slot
    /// is free, and either the network's private reservation has room or the
    /// shared portion does. (The physical bound matters in the transition
    /// right after [`SlotPool::set_reservation`], when one class may still
    /// hold more than its new allotment.)
    #[must_use]
    pub fn can_acquire(&self, vnet: usize) -> bool {
        if self.occupancy() >= self.total {
            return false;
        }
        if self.in_use[vnet] < self.reserved_per_vnet {
            return true;
        }
        let shared = self.total - NUM_VNETS * self.reserved_per_vnet;
        self.shared_used() < shared
    }

    /// Takes a slot for `vnet`. Callers check [`SlotPool::can_acquire`]
    /// first; acquiring without space is a flow-control bug.
    pub fn acquire(&mut self, vnet: usize) {
        debug_assert!(self.can_acquire(vnet), "pool slot acquired without space");
        self.in_use[vnet] += 1;
    }

    /// Returns `vnet`'s slot to the pool.
    pub fn release(&mut self, vnet: usize) {
        debug_assert!(self.in_use[vnet] > 0, "pool release without a held slot");
        self.in_use[vnet] = self.in_use[vnet].saturating_sub(1);
    }

    /// Installs a per-network reservation of `r` slots (clamped so the four
    /// reservations never exceed the pool; pools smaller than four slots
    /// cannot reserve and stay fully shared). Messages already holding more
    /// than their new allotment are not evicted — the pool simply refuses
    /// new shared acquisitions until releases catch up (in practice the
    /// recovery drain empties the fabric before the reservation starts).
    pub fn set_reservation(&mut self, r: usize) {
        self.reserved_per_vnet = r.min(self.total / NUM_VNETS);
    }

    /// Drops every held slot (recovery drain); the reservation setting is
    /// kept.
    pub fn clear(&mut self) {
        self.in_use = [0; NUM_VNETS];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_shared_pool_is_a_single_counter() {
        let mut p = SlotPool::new(3);
        assert_eq!(p.total(), 3);
        assert!(p.can_acquire(0));
        p.acquire(0);
        p.acquire(1);
        p.acquire(0);
        assert_eq!(p.occupancy(), 3);
        assert_eq!(p.in_use(0), 2);
        // Exhausted for every class, regardless of who holds the slots.
        for v in 0..4 {
            assert!(!p.can_acquire(v));
        }
        p.release(1);
        assert!(p.can_acquire(3));
    }

    #[test]
    fn one_class_can_starve_the_others_without_reservations() {
        // The deadlock-enabling property: requests alone may fill the pool,
        // leaving no slot for the response that would unblock them (Fig. 2).
        let mut p = SlotPool::new(4);
        for _ in 0..4 {
            p.acquire(0);
        }
        assert!(!p.can_acquire(2), "responses must be locked out");
    }

    #[test]
    fn reservation_guarantees_each_network_its_private_slots() {
        let mut p = SlotPool::new(8);
        p.set_reservation(1);
        assert_eq!(p.reservation(), 1);
        // Class 0 takes its private slot plus the entire shared portion
        // (8 - 4 reserved = 4 shared).
        for _ in 0..5 {
            assert!(p.can_acquire(0));
            p.acquire(0);
        }
        assert!(!p.can_acquire(0), "class 0 is at private+shared capacity");
        // Every other class still has its one private slot.
        for v in 1..4 {
            assert!(p.can_acquire(v), "class {v} lost its reservation");
            p.acquire(v);
            assert!(!p.can_acquire(v));
        }
    }

    #[test]
    fn reservation_is_clamped_to_the_pool_and_small_pools_stay_shared() {
        let mut p = SlotPool::new(9);
        p.set_reservation(100);
        assert_eq!(p.reservation(), 2); // 4 * 2 <= 9
        let mut tiny = SlotPool::new(3);
        tiny.set_reservation(1);
        assert_eq!(tiny.reservation(), 0, "pools under 4 slots cannot reserve");
        assert!(tiny.can_acquire(0));
    }

    #[test]
    fn over_allotment_after_a_reservation_change_blocks_until_released() {
        let mut p = SlotPool::new(4);
        for _ in 0..4 {
            p.acquire(0);
        }
        p.set_reservation(1);
        // Class 0 holds 4 slots but is now allowed 1 private + 0 shared, and
        // no physical slot is free for anyone else either.
        assert!(!p.can_acquire(0));
        assert!(!p.can_acquire(1), "no physical slot is free");
        p.release(0);
        p.release(0);
        p.release(0);
        // Class 0 back to its private slot; class 1 gets its own.
        assert!(p.can_acquire(1));
        p.clear();
        assert_eq!(p.occupancy(), 0);
        assert_eq!(p.reservation(), 1, "drain keeps the reservation");
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slot_pool_panics() {
        let _ = SlotPool::new(0);
    }
}
