//! # specsim-safetynet
//!
//! A functional model of **SafetyNet** (Sorin et al., ISCA 2002), the global
//! checkpoint/recovery substrate that all three speculation-for-simplicity
//! designs of the paper rely on (Section 2, feature 3):
//!
//! * the shared-memory system is **logically checkpointed** at a fixed
//!   interval (Table 2: every 100 000 cycles for the directory system, every
//!   3000 coherence requests for the snooping system);
//! * between checkpoints every change to memory state is **incrementally
//!   logged** into a per-node checkpoint log buffer (Table 2: 512 KB per
//!   node, 72-byte entries); when a log fills, the node must stall until an
//!   old checkpoint commits and frees its entries;
//! * a checkpoint **commits** (and its log space is reclaimed) once the
//!   system is sure execution up to that point was mis-speculation-free —
//!   i.e. after the transaction-timeout window (three checkpoint intervals)
//!   has passed with no detection;
//! * on a detected mis-speculation the system **recovers**: all in-flight
//!   messages are discarded, the memory system state is restored to the
//!   recovery point (the most recent validated checkpoint), the processors
//!   restore their register checkpoints (100 cycles) and execution resumes.
//!
//! The model is generic over the system-state snapshot type `S`. The
//! system-assembly crate snapshots its controllers (caches, directories,
//! memories, workload positions) into an `S` at each checkpoint and restores
//! from it on recovery; this crate owns the checkpoint schedule, the log
//! capacity accounting, the validation/commit logic and the recovery-cost
//! bookkeeping.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod log;
pub mod recovery;
pub mod station;

pub use log::{LogOutcome, NodeLog};
pub use recovery::{RecoveryOutcome, RecoveryStats};
pub use station::{Checkpoint, SafetyNet, SafetyNetStats};
