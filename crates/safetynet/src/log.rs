//! Per-node checkpoint log buffers.
//!
//! SafetyNet logs the pre-image of every block the first time it is modified
//! in a checkpoint interval. The log buffer is a fixed hardware resource
//! (Table 2: 512 KB, 72-byte entries, ≈ 7 281 entries per node); entries are
//! only reclaimed when the checkpoint interval they belong to commits. If a
//! node's log fills, that node must stall speculative progress until a
//! commit frees space — a performance effect, never a correctness loss.

use specsim_base::SafetyNetConfig;

/// Result of attempting to append entries to a node's log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogOutcome {
    /// The entries were recorded.
    Recorded,
    /// The log is full; the node must stall until a checkpoint commits.
    Full,
}

/// The checkpoint log buffer of one node.
#[derive(Debug, Clone)]
pub struct NodeLog {
    capacity_entries: usize,
    /// Entries belonging to each outstanding (uncommitted) checkpoint
    /// interval, oldest first. The last element is the active interval.
    per_interval: Vec<usize>,
    /// Total entries ever recorded (statistics).
    total_recorded: u64,
    /// Append attempts rejected because the log was full.
    overflows: u64,
}

impl NodeLog {
    /// Creates an empty log with the capacity implied by `cfg`.
    #[must_use]
    pub fn new(cfg: &SafetyNetConfig) -> Self {
        Self {
            capacity_entries: cfg.log_capacity_entries(),
            per_interval: vec![0],
            total_recorded: 0,
            overflows: 0,
        }
    }

    /// Total capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity_entries
    }

    /// Entries currently held (across all outstanding intervals).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.per_interval.iter().sum()
    }

    /// True when no further entry can be recorded.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.occupancy() >= self.capacity_entries
    }

    /// Number of times an append was rejected.
    #[must_use]
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Total entries recorded over the node's lifetime.
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.total_recorded
    }

    /// Appends `entries` pre-image records to the active interval.
    pub fn record(&mut self, entries: usize) -> LogOutcome {
        if self.occupancy() + entries > self.capacity_entries {
            self.overflows += 1;
            return LogOutcome::Full;
        }
        *self
            .per_interval
            .last_mut()
            .expect("log always has an active interval") += entries;
        self.total_recorded += entries as u64;
        LogOutcome::Recorded
    }

    /// Starts a new checkpoint interval (called when a checkpoint is taken).
    pub fn start_interval(&mut self) {
        self.per_interval.push(0);
    }

    /// Frees the oldest interval's entries (called when the oldest
    /// outstanding checkpoint commits).
    pub fn commit_oldest(&mut self) {
        if self.per_interval.len() > 1 {
            self.per_interval.remove(0);
        } else {
            // Only the active interval exists; committing it empties it.
            self.per_interval[0] = 0;
        }
    }

    /// Discards everything (after a recovery the speculative intervals are
    /// meaningless; logging restarts from the restored state).
    pub fn clear(&mut self) {
        self.per_interval = vec![0];
    }

    /// Number of outstanding intervals currently tracked.
    #[must_use]
    pub fn intervals(&self) -> usize {
        self.per_interval.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SafetyNetConfig {
        SafetyNetConfig::default()
    }

    #[test]
    fn capacity_matches_table_2() {
        let log = NodeLog::new(&cfg());
        assert_eq!(log.capacity(), 512 * 1024 / 72);
    }

    #[test]
    fn record_accumulates_until_full() {
        let mut log = NodeLog::new(&SafetyNetConfig {
            log_buffer_bytes: 720,
            log_entry_bytes: 72,
            ..cfg()
        });
        assert_eq!(log.capacity(), 10);
        assert_eq!(log.record(6), LogOutcome::Recorded);
        assert_eq!(log.record(4), LogOutcome::Recorded);
        assert!(log.is_full());
        assert_eq!(log.record(1), LogOutcome::Full);
        assert_eq!(log.overflows(), 1);
        assert_eq!(log.total_recorded(), 10);
    }

    #[test]
    fn committing_the_oldest_interval_frees_its_entries() {
        let mut log = NodeLog::new(&SafetyNetConfig {
            log_buffer_bytes: 720,
            log_entry_bytes: 72,
            ..cfg()
        });
        log.record(5);
        log.start_interval();
        log.record(3);
        assert_eq!(log.occupancy(), 8);
        assert_eq!(log.intervals(), 2);
        log.commit_oldest();
        assert_eq!(log.occupancy(), 3);
        assert_eq!(log.intervals(), 1);
        // Committing when only the active interval remains empties it.
        log.commit_oldest();
        assert_eq!(log.occupancy(), 0);
    }

    #[test]
    fn clear_resets_to_a_single_empty_interval() {
        let mut log = NodeLog::new(&cfg());
        log.record(100);
        log.start_interval();
        log.record(50);
        log.clear();
        assert_eq!(log.occupancy(), 0);
        assert_eq!(log.intervals(), 1);
    }
}
