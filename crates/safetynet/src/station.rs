//! The checkpoint station: schedule, validation, commit and recovery.

use std::collections::VecDeque;

use specsim_base::{Cycle, CycleDelta, NodeId, SafetyNetConfig};

use crate::log::{LogOutcome, NodeLog};
use crate::recovery::{RecoveryOutcome, RecoveryStats};

/// One logical checkpoint of the whole shared-memory system.
#[derive(Debug, Clone)]
pub struct Checkpoint<S> {
    /// Monotonically increasing checkpoint identifier.
    pub id: u64,
    /// Cycle at which the checkpoint was (logically) taken.
    pub at: Cycle,
    /// Snapshot of the system state at that point.
    pub state: S,
}

/// Aggregate SafetyNet statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SafetyNetStats {
    /// Checkpoints taken.
    pub checkpoints_taken: u64,
    /// Checkpoints committed (validated and reclaimed).
    pub checkpoints_committed: u64,
    /// Log entries recorded across all nodes.
    pub entries_logged: u64,
    /// Cycles during which at least one node was stalled on a full log.
    pub log_stall_cycles: u64,
    /// Recovery statistics.
    pub recovery: RecoveryStats,
}

/// The SafetyNet checkpoint/recovery coordinator, generic over the system
/// snapshot type `S`.
#[derive(Debug, Clone)]
pub struct SafetyNet<S> {
    cfg: SafetyNetConfig,
    /// Outstanding checkpoints, oldest first. The front is the recovery
    /// point; there is always at least one checkpoint.
    checkpoints: VecDeque<Checkpoint<S>>,
    logs: Vec<NodeLog>,
    next_id: u64,
    last_checkpoint_at: Cycle,
    stats: SafetyNetStats,
}

impl<S: Clone> SafetyNet<S> {
    /// Creates the coordinator with an initial checkpoint of `initial_state`
    /// taken at cycle `now`.
    #[must_use]
    pub fn new(cfg: SafetyNetConfig, num_nodes: usize, initial_state: S, now: Cycle) -> Self {
        let logs = (0..num_nodes).map(|_| NodeLog::new(&cfg)).collect();
        let mut checkpoints = VecDeque::new();
        checkpoints.push_back(Checkpoint {
            id: 0,
            at: now,
            state: initial_state,
        });
        Self {
            cfg,
            checkpoints,
            logs,
            next_id: 1,
            last_checkpoint_at: now,
            stats: SafetyNetStats::default(),
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SafetyNetConfig {
        &self.cfg
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> &SafetyNetStats {
        &self.stats
    }

    /// Cycle at which the most recent checkpoint was taken.
    #[must_use]
    pub fn last_checkpoint_at(&self) -> Cycle {
        self.last_checkpoint_at
    }

    /// Number of outstanding (not yet committed) checkpoints.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.checkpoints.len()
    }

    /// True when the checkpoint interval has elapsed and a new checkpoint
    /// should be taken. The caller decides the logical time base: the
    /// directory system passes cycles; the snooping system calls
    /// [`SafetyNet::take_checkpoint`] every `checkpoint_interval_requests`
    /// coherence requests instead.
    #[must_use]
    pub fn should_checkpoint(&self, now: Cycle) -> bool {
        now.saturating_sub(self.last_checkpoint_at) >= self.cfg.checkpoint_interval_cycles
    }

    /// True when taking another checkpoint is currently allowed (bounded by
    /// the maximum number of outstanding checkpoints).
    #[must_use]
    pub fn can_checkpoint(&self) -> bool {
        self.checkpoints.len() < self.cfg.max_outstanding_checkpoints.max(1) + 1
    }

    /// Takes a checkpoint of `state` at cycle `now` and opens a new logging
    /// interval on every node.
    pub fn take_checkpoint(&mut self, now: Cycle, state: S) {
        let id = self.next_id;
        self.next_id += 1;
        self.checkpoints
            .push_back(Checkpoint { id, at: now, state });
        self.last_checkpoint_at = now;
        self.stats.checkpoints_taken += 1;
        for log in &mut self.logs {
            log.start_interval();
        }
    }

    /// Commits (validates) checkpoints that are older than the detection
    /// window — the transaction timeout (Section 4, footnote 4: "SafetyNet
    /// cannot commit an old checkpoint until it is sure that execution prior
    /// to that checkpoint was mis-speculation-free ... it might have to wait
    /// as long as the timeout latency"). Always keeps at least one
    /// checkpoint as the recovery point.
    pub fn advance(&mut self, now: Cycle) {
        let window = self.cfg.transaction_timeout_cycles();
        while self.checkpoints.len() > 1 {
            // The front checkpoint can be discarded once the *next* one is
            // older than the validation window: the next one then becomes the
            // recovery point.
            let next_at = self.checkpoints[1].at;
            if now.saturating_sub(next_at) >= window {
                self.checkpoints.pop_front();
                self.stats.checkpoints_committed += 1;
                for log in &mut self.logs {
                    log.commit_oldest();
                }
            } else {
                break;
            }
        }
    }

    /// Records `entries` memory-write pre-images in `node`'s log.
    pub fn log_writes(&mut self, node: NodeId, entries: usize) -> LogOutcome {
        if entries == 0 {
            return LogOutcome::Recorded;
        }
        let outcome = self.logs[node.index()].record(entries);
        if outcome == LogOutcome::Recorded {
            self.stats.entries_logged += entries as u64;
        }
        outcome
    }

    /// True when `node`'s log cannot accept more entries (the node must
    /// stall).
    #[must_use]
    pub fn log_is_full(&self, node: NodeId) -> bool {
        self.logs[node.index()].is_full()
    }

    /// Current occupancy of `node`'s log in entries.
    #[must_use]
    pub fn log_occupancy(&self, node: NodeId) -> usize {
        self.logs[node.index()].occupancy()
    }

    /// Records that the system spent a cycle stalled on a full log
    /// (statistics only).
    pub fn note_log_stall(&mut self) {
        self.stats.log_stall_cycles += 1;
    }

    /// The checkpoint execution would resume from if a mis-speculation were
    /// detected right now.
    #[must_use]
    pub fn recovery_point(&self) -> &Checkpoint<S> {
        self.checkpoints.front().expect("at least one checkpoint")
    }

    /// Performs a recovery at cycle `now`: discards every checkpoint newer
    /// than the recovery point, clears all speculative log entries, and
    /// returns the snapshot to restore together with the cost accounting.
    pub fn recover(&mut self, now: Cycle) -> (S, RecoveryOutcome) {
        let point = self
            .checkpoints
            .front()
            .expect("at least one checkpoint")
            .clone();
        // Everything after the recovery point is speculative and discarded.
        self.checkpoints.clear();
        self.checkpoints.push_back(point.clone());
        for log in &mut self.logs {
            log.clear();
        }
        self.last_checkpoint_at = point.at;
        let outcome = RecoveryOutcome {
            checkpoint_id: point.id,
            checkpoint_cycle: point.at,
            lost_work_cycles: now.saturating_sub(point.at),
            recovery_latency_cycles: self.cfg.register_checkpoint_cycles + RECOVERY_RESTORE_CYCLES,
        };
        self.stats.recovery.record(&outcome);
        (point.state, outcome)
    }
}

/// Fixed cost of restoring memory-system state and draining the interconnect
/// during a recovery, charged on top of the register-checkpoint restore
/// latency of Table 2. The paper reports that "recovery time varies somewhat,
/// depending on how much work the system loses"; the variable part is the
/// lost work, accounted separately.
pub const RECOVERY_RESTORE_CYCLES: CycleDelta = 1_000;

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SafetyNetConfig {
        SafetyNetConfig {
            checkpoint_interval_cycles: 1_000,
            timeout_checkpoint_intervals: 3,
            ..SafetyNetConfig::default()
        }
    }

    fn station() -> SafetyNet<Vec<u32>> {
        SafetyNet::new(cfg(), 4, vec![0], 0)
    }

    #[test]
    fn checkpoint_schedule_follows_the_interval() {
        let mut s = station();
        assert!(!s.should_checkpoint(999));
        assert!(s.should_checkpoint(1_000));
        s.take_checkpoint(1_000, vec![1]);
        assert!(!s.should_checkpoint(1_500));
        assert!(s.should_checkpoint(2_000));
        assert_eq!(s.outstanding(), 2);
        assert_eq!(s.stats().checkpoints_taken, 1);
    }

    #[test]
    fn old_checkpoints_commit_after_the_validation_window() {
        let mut s = station();
        s.take_checkpoint(1_000, vec![1]);
        s.take_checkpoint(2_000, vec![2]);
        s.take_checkpoint(3_000, vec![3]);
        assert_eq!(s.outstanding(), 4);
        // Validation window = 3 * 1000 cycles. At cycle 4000 the checkpoint
        // taken at 1000 is old enough that the initial checkpoint (cycle 0)
        // can be discarded.
        s.advance(4_000);
        assert_eq!(s.recovery_point().id, 1);
        // Much later, only the newest checkpoint remains as recovery point.
        s.advance(100_000);
        assert_eq!(s.outstanding(), 1);
        assert_eq!(s.recovery_point().id, 3);
        assert_eq!(s.stats().checkpoints_committed, 3);
    }

    #[test]
    fn recovery_returns_the_recovery_point_state_and_costs() {
        let mut s = station();
        s.take_checkpoint(1_000, vec![1]);
        s.take_checkpoint(2_000, vec![2]);
        // Detection at cycle 2_500: recovery point is still the initial
        // checkpoint (nothing has validated yet).
        let (state, outcome) = s.recover(2_500);
        assert_eq!(state, vec![0]);
        assert_eq!(outcome.checkpoint_id, 0);
        assert_eq!(outcome.lost_work_cycles, 2_500);
        assert_eq!(
            outcome.recovery_latency_cycles,
            100 + RECOVERY_RESTORE_CYCLES
        );
        assert_eq!(s.outstanding(), 1);
        assert_eq!(s.stats().recovery.recoveries, 1);
        // Logging restarts from the restored point.
        assert_eq!(s.log_occupancy(NodeId(0)), 0);
    }

    #[test]
    fn recovery_after_validation_rolls_back_less_work() {
        let mut s = station();
        s.take_checkpoint(1_000, vec![1]);
        s.take_checkpoint(2_000, vec![2]);
        s.take_checkpoint(3_000, vec![3]);
        // At cycle 5000 every checkpoint taken at or before cycle 2000 has
        // validated (the 3-interval detection window has passed), so the
        // recovery point is the checkpoint taken at cycle 2000.
        s.advance(5_000);
        let (state, outcome) = s.recover(5_200);
        assert_eq!(state, vec![2]);
        assert_eq!(outcome.checkpoint_cycle, 2_000);
        assert_eq!(outcome.lost_work_cycles, 3_200);
    }

    #[test]
    fn log_accounting_fills_and_frees_with_commits() {
        let tiny = SafetyNetConfig {
            log_buffer_bytes: 720, // 10 entries
            log_entry_bytes: 72,
            checkpoint_interval_cycles: 1_000,
            ..SafetyNetConfig::default()
        };
        let mut s: SafetyNet<u8> = SafetyNet::new(tiny, 2, 0, 0);
        assert_eq!(s.log_writes(NodeId(0), 6), LogOutcome::Recorded);
        s.take_checkpoint(1_000, 1);
        assert_eq!(s.log_writes(NodeId(0), 4), LogOutcome::Recorded);
        assert!(s.log_is_full(NodeId(0)));
        assert_eq!(s.log_writes(NodeId(0), 1), LogOutcome::Full);
        // The other node's log is independent.
        assert_eq!(s.log_writes(NodeId(1), 3), LogOutcome::Recorded);
        // Once the first interval commits, space frees up.
        s.take_checkpoint(2_000, 2);
        s.advance(10_000);
        assert!(!s.log_is_full(NodeId(0)));
        assert_eq!(s.log_writes(NodeId(0), 5), LogOutcome::Recorded);
    }

    #[test]
    fn can_checkpoint_is_bounded_by_outstanding_limit() {
        let mut s = station();
        let mut now = 0;
        while s.can_checkpoint() {
            now += 1_000;
            s.take_checkpoint(now, vec![]);
            assert!(s.outstanding() <= s.config().max_outstanding_checkpoints + 1);
        }
        // Advancing time validates old checkpoints and allows new ones again.
        s.advance(now + 10_000);
        assert!(s.can_checkpoint());
    }

    #[test]
    fn zero_entry_log_writes_are_free() {
        let mut s = station();
        assert_eq!(s.log_writes(NodeId(3), 0), LogOutcome::Recorded);
        assert_eq!(s.log_occupancy(NodeId(3)), 0);
        assert_eq!(s.stats().entries_logged, 0);
    }
}
