//! Recovery bookkeeping.

use specsim_base::{Cycle, CycleDelta};

/// What a recovery cost, returned by
/// [`crate::SafetyNet::recover`] so the system layer can charge the time and
/// rewind its state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// The checkpoint id the system rolled back to.
    pub checkpoint_id: u64,
    /// The cycle at which that checkpoint was taken (execution resumes from
    /// this point of the workload).
    pub checkpoint_cycle: Cycle,
    /// Speculative work discarded: cycles of execution between the recovery
    /// point and the detection of the mis-speculation.
    pub lost_work_cycles: CycleDelta,
    /// Cycles the recovery procedure itself consumes (state restoration,
    /// register checkpoint restore, network drain) before execution resumes.
    pub recovery_latency_cycles: CycleDelta,
}

/// Aggregate recovery statistics for one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Number of recoveries performed.
    pub recoveries: u64,
    /// Total cycles of discarded speculative work.
    pub total_lost_work: CycleDelta,
    /// Total cycles spent in the recovery procedure itself.
    pub total_recovery_latency: CycleDelta,
}

impl RecoveryStats {
    /// Records one recovery.
    pub fn record(&mut self, outcome: &RecoveryOutcome) {
        self.recoveries += 1;
        self.total_lost_work += outcome.lost_work_cycles;
        self.total_recovery_latency += outcome.recovery_latency_cycles;
    }

    /// Mean cost (lost work + procedure latency) per recovery in cycles.
    #[must_use]
    pub fn mean_cost_cycles(&self) -> f64 {
        if self.recoveries == 0 {
            0.0
        } else {
            (self.total_lost_work + self.total_recovery_latency) as f64 / self.recoveries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate_costs() {
        let mut s = RecoveryStats::default();
        s.record(&RecoveryOutcome {
            checkpoint_id: 1,
            checkpoint_cycle: 100,
            lost_work_cycles: 900,
            recovery_latency_cycles: 100,
        });
        s.record(&RecoveryOutcome {
            checkpoint_id: 2,
            checkpoint_cycle: 200,
            lost_work_cycles: 1900,
            recovery_latency_cycles: 100,
        });
        assert_eq!(s.recoveries, 2);
        assert_eq!(s.total_lost_work, 2800);
        assert_eq!(s.total_recovery_latency, 200);
        assert!((s.mean_cost_cycles() - 1500.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_mean_cost() {
        assert_eq!(RecoveryStats::default().mean_cost_cycles(), 0.0);
    }
}
