//! A small persistent thread pool for barrier-separated simulation phases.
//!
//! The phase-split engine runs "tick every node"-shaped work as a flat index
//! space `0..num_tasks`. Workers (plus the calling thread) *claim* task
//! indices from a shared atomic cursor, which is work stealing in its
//! simplest form: a worker that finishes early keeps claiming whatever is
//! left, so imbalanced chunks never serialise the phase. [`WorkerPool::run`]
//! is a full barrier — it returns only after every task has executed *and*
//! every worker has checked in for the epoch, so the closure (borrowed by
//! raw pointer) provably outlives all uses and no worker can observe a stale
//! job across epochs.
//!
//! Determinism is the caller's contract: tasks must write only to disjoint,
//! task-indexed state (merging in fixed task order afterwards), so the
//! *schedule* of claims never influences the result. The pool itself adds no
//! randomness — it only decides which thread executes which index.
//!
//! The pool clamps its size to the host's available parallelism; with one
//! usable core (or `threads <= 1`) it spawns nothing and [`WorkerPool::run`]
//! degenerates to an in-order loop on the caller, which keeps single-core
//! hosts and tests on the exact serial path.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// State shared between the pool handle and its workers.
struct Shared {
    /// Monotonically increasing job generation. Bumped (Release) after the
    /// job fields below are fully published; workers acquire it to observe
    /// them.
    epoch: AtomicU64,
    /// Type-erased pointer to the caller's closure for the current epoch.
    job_data: AtomicUsize,
    /// Monomorphised trampoline that invokes the closure for one task index.
    job_invoke: AtomicUsize,
    /// Number of tasks in the current epoch's index space.
    num_tasks: AtomicUsize,
    /// Claim cursor: `fetch_add(1)` hands out task indices.
    next_task: AtomicUsize,
    /// Tasks fully executed this epoch.
    tasks_done: AtomicUsize,
    /// Workers that have exhausted the claim cursor this epoch.
    workers_done: AtomicUsize,
    /// Ends the worker threads.
    shutdown: AtomicBool,
    /// Park/unpark for idle workers between epochs.
    lock: Mutex<()>,
    cv: Condvar,
}

unsafe fn invoke_for<F: Fn(usize) + Sync>(data: usize, task: usize) {
    let f = unsafe { &*(data as *const F) };
    f(task);
}

/// A persistent pool of `threads - 1` worker threads (the caller is the
/// remaining thread) executing flat task spaces with barrier semantics. See
/// the module docs for the determinism contract.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool that uses up to `threads` threads including the
    /// caller, clamped to the host's available parallelism (a pool can never
    /// go faster than the cores it has, and oversubscription would only add
    /// scheduling noise). `threads <= 1` — or a single-core host — yields a
    /// pool with no worker threads at all.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let host = std::thread::available_parallelism().map_or(1, usize::from);
        Self::with_exact_threads(threads.clamp(1, host))
    }

    /// Creates a pool with **exactly** `threads.max(1)` threads (including
    /// the caller), ignoring the host-core clamp of [`WorkerPool::new`].
    /// Oversubscribing cores only adds scheduling noise, so production runs
    /// never want this — it exists so determinism tests can drive the
    /// multi-threaded code paths (claim racing, barrier hand-off, parallel
    /// task merging) with real concurrent threads even on single-core
    /// hosts, where `new` would silently fall back to inline execution.
    #[must_use]
    pub fn with_exact_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            job_data: AtomicUsize::new(0),
            job_invoke: AtomicUsize::new(0),
            num_tasks: AtomicUsize::new(0),
            next_task: AtomicUsize::new(0),
            tasks_done: AtomicUsize::new(0),
            workers_done: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("specsim-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Self { shared, handles }
    }

    /// Total threads the pool applies to a job, including the caller.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.handles.len() + 1
    }

    /// Executes `f(task)` for every `task` in `0..num_tasks` across the
    /// pool's threads and returns once all tasks are complete (a barrier).
    ///
    /// `f` must be safe to call concurrently from multiple threads for
    /// *distinct* task indices; each index is claimed exactly once. With no
    /// worker threads this is exactly `for task in 0..num_tasks { f(task) }`.
    pub fn run<F: Fn(usize) + Sync>(&self, num_tasks: usize, f: F) {
        if self.handles.is_empty() || num_tasks <= 1 {
            for task in 0..num_tasks {
                f(task);
            }
            return;
        }
        let s = &*self.shared;
        // Publish the job, then open the epoch with Release so workers that
        // acquire the new epoch see a fully initialised job.
        let job_data: *const F = &f;
        s.job_data.store(job_data as usize, Ordering::Relaxed);
        s.job_invoke
            .store(invoke_for::<F> as *const () as usize, Ordering::Relaxed);
        s.num_tasks.store(num_tasks, Ordering::Relaxed);
        s.next_task.store(0, Ordering::Relaxed);
        s.tasks_done.store(0, Ordering::Relaxed);
        s.workers_done.store(0, Ordering::Relaxed);
        s.epoch.fetch_add(1, Ordering::Release);
        {
            // Empty critical section: pairs with the workers' predicate
            // check under the lock so a worker cannot park between reading a
            // stale epoch and the notify (no missed wakeups).
            drop(s.lock.lock().expect("worker pool mutex"));
            s.cv.notify_all();
        }
        // The caller claims tasks too.
        loop {
            let task = s.next_task.fetch_add(1, Ordering::Relaxed);
            if task >= num_tasks {
                break;
            }
            f(task);
            s.tasks_done.fetch_add(1, Ordering::Release);
        }
        // Barrier: all tasks executed and every worker has left the claim
        // loop for this epoch, so `f` can be dropped and the next epoch's
        // job fields can be overwritten safely.
        let workers = self.handles.len();
        while s.tasks_done.load(Ordering::Acquire) < num_tasks
            || s.workers_done.load(Ordering::Acquire) < workers
        {
            std::hint::spin_loop();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            drop(self.shared.lock.lock().expect("worker pool mutex"));
            self.shared.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(s: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        // Wait for a new epoch (spin briefly, then park on the condvar).
        let mut spins = 0u32;
        let epoch = loop {
            if s.shutdown.load(Ordering::Acquire) {
                return;
            }
            let e = s.epoch.load(Ordering::Acquire);
            if e != seen_epoch {
                break e;
            }
            spins += 1;
            if spins < 1 << 12 {
                std::hint::spin_loop();
            } else {
                let guard = s.lock.lock().expect("worker pool mutex");
                // Re-check the predicate under the lock before parking.
                if s.epoch.load(Ordering::Acquire) == seen_epoch
                    && !s.shutdown.load(Ordering::Acquire)
                {
                    drop(s.cv.wait(guard).expect("worker pool condvar"));
                }
                spins = 0;
            }
        };
        seen_epoch = epoch;
        let data = s.job_data.load(Ordering::Relaxed);
        let invoke = s.job_invoke.load(Ordering::Relaxed);
        let num_tasks = s.num_tasks.load(Ordering::Relaxed);
        // SAFETY: `invoke` was stored from an `invoke_for::<F>` function
        // pointer by the publisher of this epoch.
        let invoke: unsafe fn(usize, usize) =
            unsafe { std::mem::transmute::<usize, unsafe fn(usize, usize)>(invoke) };
        loop {
            let task = s.next_task.fetch_add(1, Ordering::Relaxed);
            if task >= num_tasks {
                break;
            }
            // SAFETY: `run` blocks until `tasks_done == num_tasks` and
            // `workers_done` counts this thread, so the closure behind
            // `data` is alive for every invocation of this epoch.
            unsafe { invoke(data, task) };
            s.tasks_done.fetch_add(1, Ordering::Release);
        }
        s.workers_done.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let hits = AtomicU32::new(0);
        pool.run(16, |t| {
            hits.fetch_add(1 << t, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0xFFFF);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = WorkerPool::new(4);
        let counts: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        for _ in 0..50 {
            pool.run(counts.len(), |t| {
                counts[t].fetch_add(1, Ordering::Relaxed);
            });
        }
        for (t, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 50, "task {t}");
        }
    }

    #[test]
    fn barrier_sees_all_writes() {
        let pool = WorkerPool::new(8);
        let data: Vec<AtomicU32> = (0..512).map(|_| AtomicU32::new(0)).collect();
        pool.run(data.len(), |t| {
            data[t].store(t as u32 + 1, Ordering::Relaxed);
        });
        let sum: u64 = data
            .iter()
            .map(|d| u64::from(d.load(Ordering::Relaxed)))
            .sum();
        assert_eq!(sum, (1..=512u64).sum::<u64>());
    }

    #[test]
    fn pool_clamps_to_host_parallelism() {
        let host = std::thread::available_parallelism().map_or(1, usize::from);
        let pool = WorkerPool::new(1024);
        assert!(pool.threads() <= host);
    }
}
