//! Bounded message queues.
//!
//! Every buffered resource in the system — switch input ports, virtual
//! channel buffers, endpoint ingress/egress queues, controller mailboxes —
//! is a [`MsgQueue`]. Finite capacities are what make deadlock possible
//! (Section 4), so capacity accounting lives in one place and is exact:
//! a push into a full queue is refused, and the producer must retry later
//! (back-pressure), exactly as a real flow-controlled buffer behaves.

use std::collections::VecDeque;

/// Error returned when pushing into a full [`MsgQueue`]; carries the rejected
/// message back to the caller so it is not lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull<T>(pub T);

/// A FIFO queue with an optional capacity bound and occupancy statistics.
#[derive(Debug, Clone)]
pub struct MsgQueue<T> {
    items: VecDeque<T>,
    capacity: Option<usize>,
    high_water: usize,
    total_enqueued: u64,
}

impl<T> MsgQueue<T> {
    /// Creates a queue holding at most `capacity` messages.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        Self {
            items: VecDeque::with_capacity(capacity.min(1024)),
            capacity: Some(capacity),
            high_water: 0,
            total_enqueued: 0,
        }
    }

    /// Creates a queue with no capacity bound (worst-case buffering).
    #[must_use]
    pub fn unbounded() -> Self {
        Self {
            items: VecDeque::new(),
            capacity: None,
            high_water: 0,
            total_enqueued: 0,
        }
    }

    /// The capacity bound, if any.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of messages currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no messages are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when the queue cannot accept another message.
    #[must_use]
    pub fn is_full(&self) -> bool {
        match self.capacity {
            Some(cap) => self.items.len() >= cap,
            None => false,
        }
    }

    /// Remaining space, or `usize::MAX` for unbounded queues.
    #[must_use]
    pub fn free_slots(&self) -> usize {
        match self.capacity {
            Some(cap) => cap.saturating_sub(self.items.len()),
            None => usize::MAX,
        }
    }

    /// Appends a message, or returns it in [`QueueFull`] if there is no room.
    pub fn push(&mut self, item: T) -> Result<(), QueueFull<T>> {
        if self.is_full() {
            return Err(QueueFull(item));
        }
        self.items.push_back(item);
        self.total_enqueued += 1;
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Removes and returns the message at the head of the queue.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Returns a reference to the message at the head without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Iterates over the queued messages from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Removes every queued message (used when recovery drains the network).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Retains only the messages for which the predicate returns true.
    pub fn retain(&mut self, f: impl FnMut(&T) -> bool) {
        self.items.retain(f);
    }

    /// Highest occupancy ever observed.
    #[must_use]
    pub fn high_water_mark(&self) -> usize {
        self.high_water
    }

    /// Total messages ever enqueued.
    #[must_use]
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }
}

impl<T> Default for MsgQueue<T> {
    fn default() -> Self {
        Self::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = MsgQueue::unbounded();
        for i in 0..10 {
            q.push(i).unwrap();
        }
        let out: Vec<i32> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        let mut q = MsgQueue::bounded(2);
        assert!(q.push('a').is_ok());
        assert!(q.push('b').is_ok());
        assert!(q.is_full());
        assert_eq!(q.free_slots(), 0);
        assert_eq!(q.push('c'), Err(QueueFull('c')));
        q.pop();
        assert!(q.push('c').is_ok());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = MsgQueue::bounded(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.peek(), Some(&1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn stats_track_high_water_and_total() {
        let mut q = MsgQueue::bounded(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        q.pop();
        q.pop();
        q.push(9).unwrap();
        assert_eq!(q.high_water_mark(), 5);
        assert_eq!(q.total_enqueued(), 6);
    }

    #[test]
    fn clear_and_retain() {
        let mut q = MsgQueue::unbounded();
        for i in 0..10 {
            q.push(i).unwrap();
        }
        q.retain(|&x| x % 2 == 0);
        assert_eq!(q.len(), 5);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn zero_capacity_queue_rejects_everything() {
        let mut q = MsgQueue::bounded(0);
        assert!(q.is_full());
        assert_eq!(q.push(1), Err(QueueFull(1)));
    }

    proptest! {
        #[test]
        fn bounded_queue_never_exceeds_capacity(
            cap in 1usize..16,
            ops in proptest::collection::vec(any::<bool>(), 0..200),
        ) {
            let mut q = MsgQueue::bounded(cap);
            let mut model: VecDeque<u32> = VecDeque::new();
            let mut next = 0u32;
            for push in ops {
                if push {
                    let accepted = q.push(next).is_ok();
                    if model.len() < cap {
                        prop_assert!(accepted);
                        model.push_back(next);
                    } else {
                        prop_assert!(!accepted);
                    }
                    next += 1;
                } else {
                    prop_assert_eq!(q.pop(), model.pop_front());
                }
                prop_assert!(q.len() <= cap);
                prop_assert_eq!(q.len(), model.len());
            }
        }
    }
}
