//! Message size model.
//!
//! The coherence protocol exchanges two sizes of message: short control
//! messages (requests, forwarded requests, acknowledgments, nacks) and long
//! data messages carrying a 64-byte cache block plus a header. The link
//! model charges serialization time proportional to the message size, which
//! is how link bandwidth (Table 2: 400 MB/s – 3.2 GB/s) turns into
//! contention and, under adaptive routing, into reordering opportunities.

use crate::config::BLOCK_SIZE_BYTES;

/// Size in bytes of a control-only coherence message (address + type +
/// source/destination + sequence metadata).
pub const CONTROL_MSG_BYTES: usize = 8;

/// Size in bytes of a data-carrying coherence message: a 64-byte block plus
/// an 8-byte header. This matches the 72-byte SafetyNet log entry of Table 2,
/// which stores a block pre-image plus metadata.
pub const DATA_MSG_BYTES: usize = BLOCK_SIZE_BYTES + CONTROL_MSG_BYTES;

/// Whether a message carries a data block or only control information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageSize {
    /// Control-only message ([`CONTROL_MSG_BYTES`] bytes).
    Control,
    /// Data-carrying message ([`DATA_MSG_BYTES`] bytes).
    Data,
}

impl MessageSize {
    /// Size of this class of message in bytes.
    #[must_use]
    pub const fn bytes(self) -> usize {
        match self {
            MessageSize::Control => CONTROL_MSG_BYTES,
            MessageSize::Data => DATA_MSG_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_messages_carry_a_block_plus_header() {
        assert_eq!(DATA_MSG_BYTES, 72);
        assert_eq!(MessageSize::Data.bytes(), 72);
        assert_eq!(MessageSize::Control.bytes(), 8);
        assert!(MessageSize::Data.bytes() > MessageSize::Control.bytes());
    }
}
