//! Statistics collection.
//!
//! The evaluation methodology of the paper (Section 5.2, following
//! Alameldeen et al.) runs each design point several times with small
//! pseudo-random perturbations and reports means with one-standard-deviation
//! error bars. [`RunningStats`] implements the numerically stable Welford
//! recurrence used for those error bars. [`Counter`], [`Histogram`] and
//! [`UtilizationTracker`] are the building blocks the simulator components
//! use to account for events, distributions (e.g. miss latencies) and busy
//! fractions (e.g. link utilization, reported as 13–35 % for static routing
//! in Section 5.3).

use crate::time::Cycle;

/// A simple saturating event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&mut self) {
        self.value = self.value.saturating_add(1);
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Current count.
    #[must_use]
    #[inline]
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

/// Online mean / variance / standard deviation via Welford's algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance of the observations (0 if fewer than two).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample (unbiased) variance of the observations (0 if fewer than two).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation — the error-bar half-width used in the
    /// paper's figures ("Error bars in results represent one standard
    /// deviation in each direction").
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (0 if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel-runs reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-bucket histogram over `u64` samples (e.g. miss latencies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u128,
}

impl Histogram {
    /// Creates a histogram with `num_buckets` buckets of `bucket_width` each;
    /// samples at or beyond `num_buckets * bucket_width` land in an overflow
    /// bucket.
    #[must_use]
    pub fn new(bucket_width: u64, num_buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(num_buckets > 0, "need at least one bucket");
        Self {
            bucket_width,
            buckets: vec![0; num_buckets],
            overflow: 0,
            total: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = (sample / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum += u128::from(sample);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded samples (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Count in the bucket covering `[i*width, (i+1)*width)`.
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Count of samples beyond the last bucket.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Smallest sample value `v` such that at least `fraction` of all samples
    /// are `<= v`, resolved to bucket granularity (upper bucket edge).
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn percentile(&self, fraction: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = (fraction.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i as u64 + 1) * self.bucket_width;
            }
        }
        u64::MAX
    }
}

/// Tracks what fraction of cycles a resource (e.g. a link) was busy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UtilizationTracker {
    busy_cycles: u64,
}

impl UtilizationTracker {
    /// Creates a tracker with zero busy cycles.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the resource was busy for `cycles` cycles.
    #[inline]
    pub fn add_busy(&mut self, cycles: u64) {
        self.busy_cycles = self.busy_cycles.saturating_add(cycles);
    }

    /// Total busy cycles recorded.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Busy fraction over an observation window ending at `now` that started
    /// at cycle `start`. Clamped to `[0, 1]`.
    #[must_use]
    pub fn utilization(&self, start: Cycle, now: Cycle) -> f64 {
        if now <= start {
            return 0.0;
        }
        (self.busy_cycles as f64 / (now - start) as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_increments_and_resets() {
        let mut c = Counter::new();
        c.incr();
        c.incr();
        c.add(5);
        assert_eq!(c.get(), 7);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn running_stats_mean_and_stddev() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn running_stats_empty_is_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn running_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.std_dev() - all.std_dev()).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10, 5);
        for v in [0, 5, 9, 10, 49, 50, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.bucket(0), 3);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(4), 1);
        assert_eq!(h.overflow(), 2);
        assert!((h.mean() - (5 + 9 + 10 + 49 + 50 + 1000) as f64 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_percentile() {
        let mut h = Histogram::new(1, 100);
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), 50);
        assert_eq!(h.percentile(0.99), 99);
        assert_eq!(h.percentile(1.0), 100);
        assert_eq!(Histogram::new(1, 4).percentile(0.5), 0);
    }

    #[test]
    fn utilization_is_busy_fraction() {
        let mut u = UtilizationTracker::new();
        u.add_busy(250);
        assert!((u.utilization(0, 1000) - 0.25).abs() < 1e-12);
        assert_eq!(u.utilization(0, 0), 0.0);
        // Clamped even if accounting overshoots the window.
        u.add_busy(10_000);
        assert_eq!(u.utilization(0, 1000), 1.0);
    }

    proptest! {
        #[test]
        fn welford_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
            let mut s = RunningStats::new();
            for &x in &xs {
                s.push(x);
            }
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
            prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
            prop_assert!((s.sample_variance() - var).abs() < 1e-5 * var.abs().max(1.0));
        }

        #[test]
        fn histogram_total_equals_bucket_sum(samples in proptest::collection::vec(0u64..10_000, 0..500)) {
            let mut h = Histogram::new(100, 50);
            for &s in &samples {
                h.record(s);
            }
            let bucket_sum: u64 = (0..50).map(|i| h.bucket(i)).sum::<u64>() + h.overflow();
            prop_assert_eq!(bucket_sum, samples.len() as u64);
        }
    }
}
