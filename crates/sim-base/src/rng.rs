//! Deterministic, checkpointable random number generation.
//!
//! Two properties matter for this simulator:
//!
//! 1. **Determinism** — a simulation run is a pure function of its seed, so
//!    protocol races found by the experiments can be replayed exactly.
//! 2. **Checkpointability** — SafetyNet recovery rewinds the workload
//!    generators to the last validated checkpoint; the RNG driving a
//!    generator must therefore expose its internal state for saving and
//!    restoring.
//!
//! [`DetRng`] is a small xoshiro256++ generator with save/restore. It also
//! implements [`rand::RngCore`] so that code using the `rand` ecosystem
//! (e.g. distributions in the workload models) can drive it directly.

use rand::RngCore;

/// Saved state of a [`DetRng`]; returned by [`DetRng::snapshot`] and accepted
/// by [`DetRng::restore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngState([u64; 4]);

/// A deterministic xoshiro256++ random number generator with explicit
/// snapshot/restore of its state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed. Different seeds produce
    /// statistically independent streams (the state is expanded with
    /// SplitMix64, the recommended seeding procedure for xoshiro).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// Derives a new independent generator from this one. Used to give each
    /// node / component its own stream while keeping the whole simulation a
    /// function of one top-level seed.
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64() ^ 0xA076_1D64_78BD_642F)
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection-free approximation is overkill
        // here; plain modulo bias is negligible for the bounds we use
        // (all far below 2^32), but use 128-bit multiply to avoid it anyway.
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Captures the generator state for later [`DetRng::restore`].
    #[must_use]
    pub fn snapshot(&self) -> RngState {
        RngState(self.s)
    }

    /// Restores the generator to a previously captured state.
    pub fn restore(&mut self, state: RngState) {
        self.s = state.0;
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        (DetRng::next_u64(self) >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        DetRng::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&DetRng::next_u64(self).to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = DetRng::next_u64(self).to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_gives_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same} collisions");
    }

    #[test]
    fn snapshot_restore_replays_exactly() {
        let mut rng = DetRng::new(7);
        for _ in 0..10 {
            rng.next_u64();
        }
        let snap = rng.snapshot();
        let forward: Vec<u64> = (0..100).map(|_| rng.next_u64()).collect();
        rng.restore(snap);
        let replay: Vec<u64> = (0..100).map(|_| rng.next_u64()).collect();
        assert_eq!(forward, replay);
    }

    #[test]
    fn fork_produces_independent_reproducible_streams() {
        let mut parent_a = DetRng::new(99);
        let mut parent_b = DetRng::new(99);
        let mut child_a = parent_a.fork();
        let mut child_b = parent_b.fork();
        for _ in 0..100 {
            assert_eq!(child_a.next_u64(), child_b.next_u64());
        }
        // Child stream differs from parent stream.
        let mut parent = DetRng::new(99);
        let mut child = parent.fork();
        let collisions = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert!(collisions < 4);
    }

    #[test]
    fn next_f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = DetRng::new(3);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn chance_matches_probability() {
        let mut rng = DetRng::new(11);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate was {rate}");
        // Degenerate probabilities.
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0)); // clamped
        assert!(!rng.chance(-1.0)); // clamped
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut rng = DetRng::new(5);
        for len in 0..32 {
            let mut buf = vec![0u8; len];
            RngCore::fill_bytes(&mut rng, &mut buf);
            // With 8+ bytes the chance of all zeros is negligible.
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} produced all zeros");
            }
        }
    }

    proptest! {
        #[test]
        fn next_below_respects_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
            let mut rng = DetRng::new(seed);
            for _ in 0..100 {
                prop_assert!(rng.next_below(bound) < bound);
            }
        }

        #[test]
        fn snapshot_restore_is_exact_for_any_seed(seed in any::<u64>(), skip in 0usize..200) {
            let mut rng = DetRng::new(seed);
            for _ in 0..skip {
                rng.next_u64();
            }
            let snap = rng.snapshot();
            let a: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
            rng.restore(snap);
            let b: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
            prop_assert_eq!(a, b);
        }
    }
}
