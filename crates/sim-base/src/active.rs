//! Active-set worklists for cycle-driven kernels.
//!
//! A cycle-driven simulator spends most of its time scanning components that
//! have nothing to do: an idle switch has no queued packets, a quiescent
//! controller has empty mailboxes. An [`ActiveSet`] tracks which small-integer
//! indices (switches, nodes) are *active* so the per-cycle loop can skip the
//! rest. Membership updates are O(1) and the structure is `Clone`, so it can
//! live inside checkpointable architectural state.
//!
//! Simulators usually need a rotating round-robin visit order for fairness.
//! [`ActiveSet::iter_from`] yields exactly the active indices in that order —
//! `start, start+1, …, capacity-1, 0, …, start-1`, members only — by scanning
//! a packed 64-bit-word bitmap, so visiting the active switches of an
//! `n`-node machine costs O(n/64 + |active|) per cycle instead of the O(n)
//! of a dense membership scan. The order is identical to filtering a dense
//! scan through [`ActiveSet::contains`], which keeps worklist-driven
//! schedules bit-identical to their exhaustive-scan ancestors.

/// A set of indices in `0..capacity` with O(1) insert/remove/contains and
/// order-preserving sparse iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSet {
    /// Packed membership bitmap; bit `i % 64` of word `i / 64` is index `i`.
    words: Vec<u64>,
    capacity: usize,
    count: usize,
}

impl ActiveSet {
    /// Creates an empty set over the index range `0..capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            count: 0,
        }
    }

    /// The index range this set covers.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of active indices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no index is active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Panics when `index` is outside `0..capacity` (matching the slice
    /// indexing of the original dense-bitmap implementation).
    fn check(&self, index: usize) {
        assert!(
            index < self.capacity,
            "index {index} out of range for ActiveSet of capacity {}",
            self.capacity
        );
    }

    /// True when `index` is active.
    #[must_use]
    pub fn contains(&self, index: usize) -> bool {
        self.check(index);
        self.words[index / 64] & (1 << (index % 64)) != 0
    }

    /// Marks `index` active; returns true if it was previously inactive.
    pub fn insert(&mut self, index: usize) -> bool {
        self.check(index);
        let (w, b) = (index / 64, 1u64 << (index % 64));
        if self.words[w] & b != 0 {
            return false;
        }
        self.words[w] |= b;
        self.count += 1;
        true
    }

    /// Marks `index` inactive; returns true if it was previously active.
    pub fn remove(&mut self, index: usize) -> bool {
        self.check(index);
        let (w, b) = (index / 64, 1u64 << (index % 64));
        if self.words[w] & b == 0 {
            return false;
        }
        self.words[w] &= !b;
        self.count -= 1;
        true
    }

    /// Deactivates every index.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.count = 0;
    }

    /// The smallest active index that is `>= from`, or `None` when no active
    /// index remains at or after `from`. O(words scanned), not O(range
    /// scanned): whole empty 64-index words are skipped with one load.
    ///
    /// This is the cursor primitive behind [`Self::iter_from`]; worklist
    /// loops that mutate the set mid-scan (deactivating the index they just
    /// visited) can drive it directly:
    /// `while let Some(i) = set.next_at_or_after(pos) { …; pos = i + 1; }`.
    #[must_use]
    pub fn next_at_or_after(&self, from: usize) -> Option<usize> {
        if from >= self.capacity {
            return None;
        }
        let mut w = from / 64;
        // Mask off the bits below `from` in the first word.
        let mut word = self.words[w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                let index = w * 64 + word.trailing_zeros() as usize;
                // The last word may carry no stale high bits (insert checks
                // the range), so any set bit is a real member.
                return Some(index);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }

    /// Iterates the active indices in rotation order starting at `start`:
    /// `start, start+1, …, capacity-1, 0, …, start-1`, members only, each
    /// exactly once. Equivalent to (but sparser than) scanning all indices in
    /// that order and filtering through [`Self::contains`].
    ///
    /// The iterator borrows the set; loops that mutate membership while
    /// visiting should use [`Self::next_at_or_after`] with an explicit
    /// cursor instead.
    pub fn iter_from(&self, start: usize) -> impl Iterator<Item = usize> + '_ {
        let split = start.min(self.capacity);
        let mut pos = split;
        let mut wrapped = false;
        std::iter::from_fn(move || loop {
            let limit = if wrapped { split } else { self.capacity };
            match self.next_at_or_after(pos) {
                Some(i) if i < limit => {
                    pos = i + 1;
                    return Some(i);
                }
                _ if !wrapped => {
                    wrapped = true;
                    pos = 0;
                }
                _ => return None,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn insert_remove_contains_len() {
        let mut s = ActiveSet::new(8);
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3), "double insert is a no-op");
        assert!(s.insert(7));
        assert_eq!(s.len(), 2);
        assert!(s.contains(3) && s.contains(7) && !s.contains(0));
        assert!(s.remove(3));
        assert!(!s.remove(3), "double remove is a no-op");
        assert_eq!(s.len(), 1);
        assert!(!s.contains(3));
    }

    #[test]
    fn clear_empties_the_set() {
        let mut s = ActiveSet::new(4);
        for i in 0..4 {
            s.insert(i);
        }
        assert_eq!(s.len(), 4);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(2));
    }

    #[test]
    fn clone_preserves_membership() {
        let mut s = ActiveSet::new(4);
        s.insert(1);
        let c = s.clone();
        assert_eq!(s, c);
        s.remove(1);
        assert!(c.contains(1), "clone is independent");
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_panics() {
        let s = ActiveSet::new(2);
        let _ = s.contains(5);
    }

    #[test]
    fn next_at_or_after_skips_empty_words() {
        let mut s = ActiveSet::new(300);
        assert_eq!(s.next_at_or_after(0), None);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(257);
        assert_eq!(s.next_at_or_after(0), Some(0));
        assert_eq!(s.next_at_or_after(1), Some(63));
        assert_eq!(s.next_at_or_after(63), Some(63));
        assert_eq!(s.next_at_or_after(64), Some(64));
        assert_eq!(s.next_at_or_after(65), Some(257));
        assert_eq!(s.next_at_or_after(258), None);
        assert_eq!(s.next_at_or_after(1000), None, "past capacity");
    }

    /// The order-preservation contract: for arbitrary membership and any
    /// rotation start, `iter_from` must equal the dense scan
    /// `(start..cap).chain(0..start).filter(contains)` the forwarding pass
    /// used before the sparse iterator existed.
    #[test]
    fn iter_from_matches_dense_rotation_scan() {
        let mut rng = DetRng::new(0xac71);
        for &cap in &[1usize, 7, 64, 65, 130, 128] {
            for density_pct in [0u64, 5, 50, 100] {
                let mut s = ActiveSet::new(cap);
                for i in 0..cap {
                    if rng.next_below(100) < density_pct {
                        s.insert(i);
                    }
                }
                for start in [0, 1, cap / 2, cap.saturating_sub(1)] {
                    let sparse: Vec<usize> = s.iter_from(start).collect();
                    let dense: Vec<usize> = (start..cap)
                        .chain(0..start)
                        .filter(|&i| s.contains(i))
                        .collect();
                    assert_eq!(
                        sparse, dense,
                        "cap {cap}, density {density_pct}%, start {start}"
                    );
                    assert_eq!(sparse.len(), s.len());
                }
            }
        }
    }

    #[test]
    fn iter_from_with_empty_set_and_zero_capacity() {
        let s = ActiveSet::new(0);
        assert_eq!(s.iter_from(0).count(), 0);
        let s = ActiveSet::new(10);
        assert_eq!(s.iter_from(3).count(), 0);
    }

    #[test]
    fn cursor_loop_supports_mid_scan_removal() {
        // The forwarding-pass pattern: visit members in rotation order while
        // deactivating the index just visited.
        let mut s = ActiveSet::new(200);
        for i in [3usize, 70, 71, 199] {
            s.insert(i);
        }
        let mut visited = Vec::new();
        let mut pos = 70;
        while let Some(i) = s.next_at_or_after(pos) {
            visited.push(i);
            s.remove(i);
            pos = i + 1;
        }
        let mut pos = 0;
        while let Some(i) = s.next_at_or_after(pos) {
            if i >= 70 {
                break;
            }
            visited.push(i);
            s.remove(i);
            pos = i + 1;
        }
        assert_eq!(visited, vec![70, 71, 199, 3]);
        assert!(s.is_empty());
    }
}
