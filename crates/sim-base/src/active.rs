//! Active-set worklists for cycle-driven kernels.
//!
//! A cycle-driven simulator spends most of its time scanning components that
//! have nothing to do: an idle switch has no queued packets, a quiescent
//! controller has empty mailboxes. An [`ActiveSet`] tracks which small-integer
//! indices (switches, nodes) are *active* so the per-cycle loop can skip the
//! rest. Membership updates are O(1) and the structure is `Clone`, so it can
//! live inside checkpointable architectural state.
//!
//! Iteration order is the caller's responsibility (simulators usually need a
//! rotating round-robin order for fairness); [`ActiveSet::contains`] is a
//! plain slice index, so scanning all indices in the desired order and
//! testing membership is cheap and keeps the schedule deterministic.

/// A set of indices in `0..capacity` with O(1) insert/remove/contains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSet {
    member: Vec<bool>,
    count: usize,
}

impl ActiveSet {
    /// Creates an empty set over the index range `0..capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            member: vec![false; capacity],
            count: 0,
        }
    }

    /// The index range this set covers.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.member.len()
    }

    /// Number of active indices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no index is active.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// True when `index` is active.
    #[must_use]
    pub fn contains(&self, index: usize) -> bool {
        self.member[index]
    }

    /// Marks `index` active; returns true if it was previously inactive.
    pub fn insert(&mut self, index: usize) -> bool {
        if self.member[index] {
            return false;
        }
        self.member[index] = true;
        self.count += 1;
        true
    }

    /// Marks `index` inactive; returns true if it was previously active.
    pub fn remove(&mut self, index: usize) -> bool {
        if !self.member[index] {
            return false;
        }
        self.member[index] = false;
        self.count -= 1;
        true
    }

    /// Deactivates every index.
    pub fn clear(&mut self) {
        self.member.fill(false);
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_len() {
        let mut s = ActiveSet::new(8);
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3), "double insert is a no-op");
        assert!(s.insert(7));
        assert_eq!(s.len(), 2);
        assert!(s.contains(3) && s.contains(7) && !s.contains(0));
        assert!(s.remove(3));
        assert!(!s.remove(3), "double remove is a no-op");
        assert_eq!(s.len(), 1);
        assert!(!s.contains(3));
    }

    #[test]
    fn clear_empties_the_set() {
        let mut s = ActiveSet::new(4);
        for i in 0..4 {
            s.insert(i);
        }
        assert_eq!(s.len(), 4);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(2));
    }

    #[test]
    fn clone_preserves_membership() {
        let mut s = ActiveSet::new(4);
        s.insert(1);
        let c = s.clone();
        assert_eq!(s, c);
        s.remove(1);
        assert!(c.contains(1), "clone is independent");
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_panics() {
        let s = ActiveSet::new(2);
        let _ = s.contains(5);
    }
}
