//! Deterministic telemetry: log2-bucketed latency histograms, engine-mode
//! timelines, cycle-windowed time-series samplers and speculation-lifecycle
//! event traces.
//!
//! Everything in this module is timestamped in *simulated cycles* — never
//! wall clock — so its output is bit-identical across the serial reference
//! kernel and the phase-split engine (`SPECSIM_WORKERS=4`), and across
//! repeated runs. The recorder is disabled by default
//! ([`TelemetryConfig::default`]) and costs nothing when off; the engine's
//! mode timeline is always on but only does one array increment per cycle
//! plus a vector push per mode *transition* (transitions are as rare as
//! recoveries).

use crate::time::Cycle;

/// Number of buckets in a [`Log2Histogram`]: bucket 0 holds exact zeros,
/// bucket `k` (1..=64) holds samples in `[2^(k-1), 2^k - 1]`, so the full
/// `u64` range is covered with no overflow bucket.
pub const LOG2_BUCKETS: usize = 65;

/// A latency histogram with power-of-two bucket boundaries.
///
/// 65 fixed `u64` buckets cover the whole `u64` sample range, so recording
/// never saturates into an overflow bucket and merging two histograms is
/// elementwise addition. Percentile queries return the *upper edge* of the
/// bucket containing the requested rank — a deterministic, conservative
/// (never under-reporting) estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; LOG2_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; LOG2_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a sample falls into.
    #[must_use]
    pub fn bucket_of(sample: u64) -> usize {
        (u64::BITS - sample.leading_zeros()) as usize
    }

    /// The largest sample value bucket `index` can hold.
    #[must_use]
    pub fn bucket_upper(index: usize) -> u64 {
        match index {
            0 => 0,
            1..=63 => (1u64 << index) - 1,
            _ => u64::MAX,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        self.buckets[Self::bucket_of(sample)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(sample);
    }

    /// Adds every sample of `other` into this histogram.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Occupancy of bucket `index`.
    #[must_use]
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Exact mean of the recorded samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The upper edge of the bucket holding the sample at rank
    /// `ceil(fraction * count)` (0 when empty). `fraction` is clamped to
    /// `(0, 1]`; by construction the result is monotone in `fraction`.
    #[must_use]
    pub fn percentile(&self, fraction: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((fraction.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(LOG2_BUCKETS - 1)
    }

    /// Median estimate (upper bucket edge).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th-percentile estimate (upper bucket edge).
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th-percentile estimate (upper bucket edge).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// One-line summary used by run reports: `mean/p50/p95/p99 (n)`.
    #[must_use]
    pub fn summary(&self) -> String {
        if self.count == 0 {
            return "n=0".to_string();
        }
        format!(
            "mean {:.1}, p50 {}, p95 {}, p99 {} (n={})",
            self.mean(),
            self.p50(),
            self.p95(),
            self.p99(),
            self.count
        )
    }
}

/// Number of distinct [`EngineMode`]s.
pub const ENGINE_MODE_COUNT: usize = 5;

/// The engine's operating mode at a given cycle, as tracked by the
/// always-on [`ModeTimeline`]. This is the availability view of
/// [the forward-progress machinery]: `Normal` cycles commit work at full
/// speed, every other mode is a degraded phase of the
/// speculation/recovery lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineMode {
    /// Full-speed execution.
    Normal,
    /// Adaptive routing disabled after a reordering mis-speculation
    /// (degraded but near-full-speed).
    AdaptiveDegraded,
    /// Slow-start window after a timeout recovery: outstanding
    /// transactions are capped.
    SlowStart,
    /// Reserved buffer slots after a detected buffer deadlock.
    ReservedSlots,
    /// The recovery procedure itself is restoring state; no forward
    /// progress.
    Rollback,
}

/// Every [`EngineMode`], in `index()` order.
pub const ALL_ENGINE_MODES: [EngineMode; ENGINE_MODE_COUNT] = [
    EngineMode::Normal,
    EngineMode::AdaptiveDegraded,
    EngineMode::SlowStart,
    EngineMode::ReservedSlots,
    EngineMode::Rollback,
];

impl EngineMode {
    /// Dense index into per-mode arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            EngineMode::Normal => 0,
            EngineMode::AdaptiveDegraded => 1,
            EngineMode::SlowStart => 2,
            EngineMode::ReservedSlots => 3,
            EngineMode::Rollback => 4,
        }
    }

    /// Short label used in experiment output and trace exports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EngineMode::Normal => "normal",
            EngineMode::AdaptiveDegraded => "adaptive-degraded",
            EngineMode::SlowStart => "slow-start",
            EngineMode::ReservedSlots => "reserved-slots",
            EngineMode::Rollback => "rollback",
        }
    }
}

/// One mode change on a [`ModeTimeline`]: at cycle `at` the engine left
/// `from` and entered `to` (cycle `at` itself is accounted to `to`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeTransition {
    /// First cycle executed in the new mode.
    pub at: Cycle,
    /// Mode before the change.
    pub from: EngineMode,
    /// Mode after the change.
    pub to: EngineMode,
}

/// Always-on per-run record of which [`EngineMode`] each simulated cycle
/// executed in: per-mode cycle totals plus the (sparse) transition list.
/// The engine observes exactly one mode per cycle, so the totals sum to
/// the number of cycles run and availability fractions fall out directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeTimeline {
    current: EngineMode,
    cycles_in: [u64; ENGINE_MODE_COUNT],
    transitions: Vec<ModeTransition>,
}

impl Default for ModeTimeline {
    fn default() -> Self {
        Self::new()
    }
}

impl ModeTimeline {
    /// Creates a timeline starting in [`EngineMode::Normal`].
    #[must_use]
    pub fn new() -> Self {
        Self {
            current: EngineMode::Normal,
            cycles_in: [0; ENGINE_MODE_COUNT],
            transitions: Vec::new(),
        }
    }

    /// Accounts cycle `now` to `mode`, recording a transition if the mode
    /// changed. Called exactly once per simulated cycle.
    pub fn observe(&mut self, now: Cycle, mode: EngineMode) {
        if mode != self.current {
            self.transitions.push(ModeTransition {
                at: now,
                from: self.current,
                to: mode,
            });
            self.current = mode;
        }
        self.cycles_in[mode.index()] += 1;
    }

    /// The mode most recently observed.
    #[must_use]
    pub fn current(&self) -> EngineMode {
        self.current
    }

    /// Cycles observed in `mode`.
    #[must_use]
    pub fn cycles_in(&self, mode: EngineMode) -> u64 {
        self.cycles_in[mode.index()]
    }

    /// Per-mode cycle totals, indexed by [`EngineMode::index`].
    #[must_use]
    pub fn cycle_totals(&self) -> [u64; ENGINE_MODE_COUNT] {
        self.cycles_in
    }

    /// Total cycles observed across every mode.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.cycles_in.iter().sum()
    }

    /// Fraction of observed cycles spent in `mode` (0 when nothing has
    /// been observed).
    #[must_use]
    pub fn fraction(&self, mode: EngineMode) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.cycles_in(mode) as f64 / total as f64
        }
    }

    /// Every recorded mode change, in cycle order.
    #[must_use]
    pub fn transitions(&self) -> &[ModeTransition] {
        &self.transitions
    }

    /// Contiguous `(first_cycle, last_cycle, mode)` spans covering cycles
    /// `1..=end`, reconstructed from the transition list. Assumes the
    /// timeline observed every cycle from 1 (as the engine does); empty
    /// when `end` is 0.
    #[must_use]
    pub fn spans(&self, end: Cycle) -> Vec<(Cycle, Cycle, EngineMode)> {
        if end == 0 {
            return Vec::new();
        }
        let mut spans = Vec::with_capacity(self.transitions.len() + 1);
        let mut start = 1;
        let mut mode = self.transitions.first().map_or(self.current, |t| t.from);
        for t in &self.transitions {
            if t.at > start {
                spans.push((start, t.at - 1, mode));
            }
            start = t.at;
            mode = t.to;
        }
        if start <= end {
            spans.push((start, end, mode));
        }
        spans
    }
}

/// Telemetry knobs. The default (`window_cycles == 0`, no event trace) is
/// fully disabled: the engine allocates no recorder and the per-cycle cost
/// is a single `Option` check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// Width of the time-series sampler windows in simulated cycles; 0
    /// disables the windowed sampler.
    pub window_cycles: u64,
    /// Record the speculation-lifecycle event trace (checkpoints,
    /// mis-speculations, rollbacks, fault fire/detect).
    pub trace_events: bool,
}

impl TelemetryConfig {
    /// The disabled default.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Windowed sampling plus the event trace — the everything-on preset.
    #[must_use]
    pub fn windowed(window_cycles: u64) -> Self {
        Self {
            window_cycles,
            trace_events: true,
        }
    }

    /// True when any surface is recording.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.window_cycles > 0 || self.trace_events
    }
}

/// Cumulative fabric counters a protocol reports for the windowed sampler
/// (the sampler differences successive snapshots to get per-window rates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricCounters {
    /// Total busy cycles summed over every unidirectional link.
    pub link_busy_cycles: u64,
    /// Number of unidirectional links (0 when the protocol has no fabric).
    pub num_links: u64,
    /// Messages delivered by the fabric so far.
    pub delivered: u64,
}

/// A cumulative counter snapshot taken at a window boundary; the recorder
/// differences successive snapshots into a [`WindowSample`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowCounters {
    /// Memory operations completed so far.
    pub ops_completed: u64,
    /// Recoveries performed so far (mis-speculation plus injected).
    pub recoveries: u64,
    /// Fabric link-busy cycles so far.
    pub link_busy_cycles: u64,
    /// Unidirectional fabric links (instantaneous).
    pub num_links: u64,
    /// Fabric messages delivered so far.
    pub messages_delivered: u64,
    /// SafetyNet log entries recorded so far.
    pub log_entries: u64,
    /// Outstanding coherence transactions (instantaneous).
    pub outstanding: u64,
    /// SafetyNet log occupancy summed over nodes (instantaneous).
    pub log_occupancy: u64,
}

/// One window of the time-series sampler, covering simulated cycles
/// `(end - window, end]`. Rate fields are deltas over the window;
/// `outstanding` and `log_occupancy` are sampled at the boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSample {
    /// First cycle of the window.
    pub start: Cycle,
    /// Last cycle of the window (the sampling boundary).
    pub end: Cycle,
    /// Memory operations completed in the window.
    pub ops: u64,
    /// Recoveries begun in the window.
    pub recoveries: u64,
    /// Fabric messages delivered in the window.
    pub delivered: u64,
    /// SafetyNet log entries recorded in the window.
    pub log_entries: u64,
    /// Mean fabric link utilization over the window (0..=1).
    pub link_utilization: f64,
    /// Outstanding coherence transactions at the boundary.
    pub outstanding: u64,
    /// SafetyNet log occupancy (entries held across nodes) at the boundary.
    pub log_occupancy: u64,
    /// Engine mode at the boundary.
    pub mode: EngineMode,
}

impl WindowSample {
    /// The sample as one JSON object (a JSONL line, no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"window_start\":{},\"window_end\":{},\"ops\":{},\"recoveries\":{},\
             \"delivered\":{},\"log_entries\":{},\"link_utilization\":{:.6},\
             \"outstanding\":{},\"log_occupancy\":{},\"mode\":\"{}\"}}",
            self.start,
            self.end,
            self.ops,
            self.recoveries,
            self.delivered,
            self.log_entries,
            self.link_utilization,
            self.outstanding,
            self.log_occupancy,
            self.mode.label()
        )
    }
}

/// One speculation-lifecycle event. All cycle stamps are simulated time;
/// `kind`/`cause` labels come from the protocol's stable label functions,
/// so serialized traces are bit-stable across kernels and runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecEvent {
    /// SafetyNet took a checkpoint.
    Checkpoint {
        /// Checkpoint cycle.
        at: Cycle,
    },
    /// A mis-speculation was detected.
    MisSpec {
        /// Detection cycle.
        at: Cycle,
        /// Mis-speculation kind label.
        kind: &'static str,
        /// Node that declared it.
        node: u64,
    },
    /// The fault director injected a transient fault.
    FaultFired {
        /// Injection cycle.
        at: Cycle,
        /// Fault kind label.
        kind: &'static str,
    },
    /// A transaction timeout was classified as an injected transient fault.
    FaultDetected {
        /// Detection cycle.
        at: Cycle,
        /// Cycle the fault was injected (detection latency = `at` − this).
        injected_at: Cycle,
        /// Fault kind label.
        kind: &'static str,
    },
    /// A recovery began: state rolls back and the engine stalls until
    /// `resume_at`.
    Rollback {
        /// Cycle the recovery was initiated.
        at: Cycle,
        /// First cycle of post-recovery execution.
        resume_at: Cycle,
        /// What triggered it (mis-speculation kind label or `"injected"`).
        cause: &'static str,
    },
}

/// The gated telemetry recorder: windowed time-series samples plus the
/// speculation-lifecycle event trace, with JSONL and Chrome-trace-event
/// exporters. Constructed only when [`TelemetryConfig::enabled`].
#[derive(Debug, Clone)]
pub struct TelemetryRecorder {
    cfg: TelemetryConfig,
    /// Next window boundary (0 when the sampler is off).
    next_window: Cycle,
    last: WindowCounters,
    samples: Vec<WindowSample>,
    events: Vec<SpecEvent>,
}

impl TelemetryRecorder {
    /// Builds a recorder for `cfg`, or `None` when telemetry is disabled.
    #[must_use]
    pub fn new(cfg: TelemetryConfig) -> Option<Self> {
        cfg.enabled().then(|| Self {
            cfg,
            next_window: cfg.window_cycles,
            last: WindowCounters::default(),
            samples: Vec::new(),
            events: Vec::new(),
        })
    }

    /// The recorder's configuration.
    #[must_use]
    pub fn config(&self) -> TelemetryConfig {
        self.cfg
    }

    /// True when cycle `now` is a window boundary the sampler must close.
    #[must_use]
    pub fn window_due(&self, now: Cycle) -> bool {
        self.cfg.window_cycles > 0 && now >= self.next_window
    }

    /// Closes the window ending at `now` from the cumulative counter
    /// snapshot `c` (differenced against the previous boundary).
    pub fn sample_window(&mut self, now: Cycle, mode: EngineMode, c: WindowCounters) {
        let window = self.cfg.window_cycles;
        let start = now + 1 - window;
        let busy = c
            .link_busy_cycles
            .saturating_sub(self.last.link_busy_cycles);
        let link_cycles = window.saturating_mul(c.num_links);
        let link_utilization = if link_cycles == 0 {
            0.0
        } else {
            (busy as f64 / link_cycles as f64).clamp(0.0, 1.0)
        };
        self.samples.push(WindowSample {
            start,
            end: now,
            ops: c.ops_completed.saturating_sub(self.last.ops_completed),
            recoveries: c.recoveries.saturating_sub(self.last.recoveries),
            delivered: c
                .messages_delivered
                .saturating_sub(self.last.messages_delivered),
            log_entries: c.log_entries.saturating_sub(self.last.log_entries),
            link_utilization,
            outstanding: c.outstanding,
            log_occupancy: c.log_occupancy,
            mode,
        });
        self.last = c;
        self.next_window = now + window;
    }

    /// Appends a lifecycle event (no-op unless the event trace is on).
    pub fn record(&mut self, ev: SpecEvent) {
        if self.cfg.trace_events {
            self.events.push(ev);
        }
    }

    /// The collected window samples.
    #[must_use]
    pub fn samples(&self) -> &[WindowSample] {
        &self.samples
    }

    /// The collected lifecycle events.
    #[must_use]
    pub fn events(&self) -> &[SpecEvent] {
        &self.events
    }

    /// The window samples as JSONL (one JSON object per line, trailing
    /// newline after each).
    #[must_use]
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out
    }

    /// The event trace plus the mode timeline as a Chrome trace-event JSON
    /// document (loadable in Perfetto / `chrome://tracing`). Timestamps map
    /// one simulated cycle to one trace microsecond. Track 0 carries the
    /// engine-mode spans, track 1 the instant lifecycle events, track 2 the
    /// rollback duration events.
    #[must_use]
    pub fn chrome_trace(&self, timeline: &ModeTimeline, end: Cycle) -> String {
        let mut events: Vec<String> = Vec::new();
        for (start, last, mode) in timeline.spans(end) {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"mode\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":0}}",
                mode.label(),
                start,
                last + 1 - start
            ));
        }
        for ev in &self.events {
            events.push(match *ev {
                SpecEvent::Checkpoint { at } => format!(
                    "{{\"name\":\"checkpoint\",\"cat\":\"safetynet\",\"ph\":\"i\",\"ts\":{at},\
                     \"pid\":0,\"tid\":1,\"s\":\"g\"}}"
                ),
                SpecEvent::MisSpec { at, kind, node } => format!(
                    "{{\"name\":\"misspec:{kind}\",\"cat\":\"speculation\",\"ph\":\"i\",\
                     \"ts\":{at},\"pid\":0,\"tid\":1,\"s\":\"g\",\"args\":{{\"node\":{node}}}}}"
                ),
                SpecEvent::FaultFired { at, kind } => format!(
                    "{{\"name\":\"fault-fired:{kind}\",\"cat\":\"fault\",\"ph\":\"i\",\
                     \"ts\":{at},\"pid\":0,\"tid\":1,\"s\":\"g\"}}"
                ),
                SpecEvent::FaultDetected {
                    at,
                    injected_at,
                    kind,
                } => format!(
                    "{{\"name\":\"fault-detected:{kind}\",\"cat\":\"fault\",\"ph\":\"i\",\
                     \"ts\":{at},\"pid\":0,\"tid\":1,\"s\":\"g\",\
                     \"args\":{{\"injected_at\":{injected_at},\"latency\":{}}}}}",
                    at.saturating_sub(injected_at)
                ),
                SpecEvent::Rollback {
                    at,
                    resume_at,
                    cause,
                } => format!(
                    "{{\"name\":\"rollback:{cause}\",\"cat\":\"recovery\",\"ph\":\"X\",\
                     \"ts\":{at},\"dur\":{},\"pid\":0,\"tid\":2}}",
                    resume_at.saturating_sub(at)
                ),
            });
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&events.join(",\n"));
        out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"time_unit\":\"1 ts = 1 simulated cycle\"}}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn log2_bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        for k in 1..=63usize {
            let low = 1u64 << (k - 1);
            let high = (1u64 << k) - 1;
            assert_eq!(Log2Histogram::bucket_of(low), k, "lower edge of bucket {k}");
            assert_eq!(
                Log2Histogram::bucket_of(high),
                k,
                "upper edge of bucket {k}"
            );
            assert_eq!(Log2Histogram::bucket_upper(k), high);
        }
    }

    #[test]
    fn log2_percentiles_and_mean() {
        let mut h = Log2Histogram::new();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert!((h.mean() - (1.0 + 2.0 + 3.0 + 4.0 + 100.0 + 1000.0) / 6.0).abs() < 1e-12);
        // Ranks: p50 → 3rd sample (3, bucket upper 3); p99 → 6th (1000,
        // bucket [512,1023] upper 1023).
        assert_eq!(h.p50(), 3);
        assert_eq!(h.p99(), 1023);
        assert_eq!(Log2Histogram::new().p95(), 0);
    }

    #[test]
    fn log2_merge_is_elementwise_sum() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut all = Log2Histogram::new();
        for v in [0u64, 5, 17] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 300, u64::MAX] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    proptest! {
        #[test]
        fn log2_count_equals_bucket_sum(samples in proptest::collection::vec(any::<u64>(), 0..200)) {
            let mut h = Log2Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            let bucket_sum: u64 = (0..LOG2_BUCKETS).map(|i| h.bucket(i)).sum();
            prop_assert_eq!(h.count(), bucket_sum);
            prop_assert_eq!(h.count(), samples.len() as u64);
        }

        #[test]
        fn log2_percentile_is_monotone_and_bounds_samples(
            samples in proptest::collection::vec(0u64..1_000_000, 1..200),
            f1 in 0.01f64..1.0,
            f2 in 0.01f64..1.0,
        ) {
            let mut h = Log2Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            prop_assert!(h.percentile(lo) <= h.percentile(hi));
            // p100 never under-reports the maximum sample.
            let max = *samples.iter().max().unwrap();
            prop_assert!(h.percentile(1.0) >= max);
        }

        #[test]
        fn log2_merge_matches_recording_everything(
            a in proptest::collection::vec(any::<u64>(), 0..100),
            b in proptest::collection::vec(any::<u64>(), 0..100),
        ) {
            let mut ha = Log2Histogram::new();
            let mut hb = Log2Histogram::new();
            let mut hall = Log2Histogram::new();
            for &s in &a {
                ha.record(s);
                hall.record(s);
            }
            for &s in &b {
                hb.record(s);
                hall.record(s);
            }
            ha.merge(&hb);
            prop_assert_eq!(ha, hall);
        }
    }

    #[test]
    fn mode_timeline_accounts_every_cycle_and_chains_transitions() {
        let mut t = ModeTimeline::new();
        for now in 1..=10u64 {
            t.observe(now, EngineMode::Normal);
        }
        for now in 11..=13u64 {
            t.observe(now, EngineMode::Rollback);
        }
        for now in 14..=20u64 {
            t.observe(now, EngineMode::SlowStart);
        }
        assert_eq!(t.total_cycles(), 20);
        assert_eq!(t.cycles_in(EngineMode::Normal), 10);
        assert_eq!(t.cycles_in(EngineMode::Rollback), 3);
        assert_eq!(t.cycles_in(EngineMode::SlowStart), 7);
        let fracs: f64 = ALL_ENGINE_MODES.iter().map(|&m| t.fraction(m)).sum();
        assert!((fracs - 1.0).abs() < 1e-12);
        let trs = t.transitions();
        assert_eq!(trs.len(), 2);
        assert_eq!(trs[0].at, 11);
        assert_eq!(trs[0].from, EngineMode::Normal);
        assert_eq!(trs[0].to, EngineMode::Rollback);
        // Transitions chain: each starts where the previous ended.
        assert_eq!(trs[1].from, trs[0].to);
        assert_eq!(
            t.spans(20),
            vec![
                (1, 10, EngineMode::Normal),
                (11, 13, EngineMode::Rollback),
                (14, 20, EngineMode::SlowStart),
            ]
        );
    }

    #[test]
    fn window_sampler_differences_cumulative_counters() {
        let cfg = TelemetryConfig::windowed(100);
        let mut r = TelemetryRecorder::new(cfg).expect("enabled");
        assert!(!r.window_due(99));
        assert!(r.window_due(100));
        r.sample_window(
            100,
            EngineMode::Normal,
            WindowCounters {
                ops_completed: 50,
                link_busy_cycles: 200,
                num_links: 4,
                ..WindowCounters::default()
            },
        );
        r.sample_window(
            200,
            EngineMode::SlowStart,
            WindowCounters {
                ops_completed: 80,
                recoveries: 1,
                link_busy_cycles: 300,
                num_links: 4,
                ..WindowCounters::default()
            },
        );
        let s = r.samples();
        assert_eq!(s.len(), 2);
        assert_eq!((s[0].start, s[0].end, s[0].ops), (1, 100, 50));
        assert_eq!((s[1].start, s[1].end, s[1].ops), (101, 200, 30));
        assert_eq!(s[1].recoveries, 1);
        // 100 extra busy cycles over 100 cycles × 4 links = 0.25.
        assert!((s[1].link_utilization - 0.25).abs() < 1e-12);
        let jsonl = r.jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.starts_with("{\"window_start\":1,\"window_end\":100,"));
    }

    #[test]
    fn disabled_config_builds_no_recorder() {
        assert!(TelemetryRecorder::new(TelemetryConfig::default()).is_none());
        assert!(!TelemetryConfig::default().enabled());
    }

    #[test]
    fn chrome_trace_contains_mode_spans_and_events() {
        let mut t = ModeTimeline::new();
        for now in 1..=5u64 {
            t.observe(now, EngineMode::Normal);
        }
        for now in 6..=8u64 {
            t.observe(now, EngineMode::Rollback);
        }
        let mut r = TelemetryRecorder::new(TelemetryConfig {
            window_cycles: 0,
            trace_events: true,
        })
        .expect("enabled");
        r.record(SpecEvent::Checkpoint { at: 3 });
        r.record(SpecEvent::MisSpec {
            at: 5,
            kind: "transaction-timeout",
            node: 2,
        });
        r.record(SpecEvent::Rollback {
            at: 5,
            resume_at: 9,
            cause: "transaction-timeout",
        });
        let trace = r.chrome_trace(&t, 8);
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"name\":\"normal\""));
        assert!(trace.contains("\"name\":\"rollback\""));
        assert!(trace.contains("\"name\":\"checkpoint\""));
        assert!(trace.contains("\"name\":\"misspec:transaction-timeout\""));
        assert!(trace.contains("\"name\":\"rollback:transaction-timeout\",\"cat\":\"recovery\""));
    }
}
