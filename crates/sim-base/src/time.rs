//! Cycle-level time keeping.
//!
//! The whole simulator is cycle driven: every component is ticked once per
//! [`Cycle`]. The processor clock of the paper's target system runs at
//! 4 GHz-equivalent (the processor model "would execute four billion
//! instructions per second"), so a cycle corresponds to 0.25 ns of target
//! time. Conversions between wall-clock target time and cycles live here so
//! that experiment code never hard-codes the scale.

/// A point in simulated time, measured in processor cycles since reset.
pub type Cycle = u64;

/// A duration in simulated processor cycles.
pub type CycleDelta = u64;

/// The number of simulated processor cycles per second of target time for the
/// paper's reference machine (a 4 GHz-equivalent node, Table 2 / Section 5.1).
pub const PAPER_CYCLES_PER_SECOND: u64 = 4_000_000_000;

/// Converts a latency expressed in nanoseconds of target time into cycles at
/// the paper's 4 GHz-equivalent clock.
///
/// ```
/// use specsim_base::time::ns_to_cycles;
/// // Table 2: 180 ns uncontended 2-hop miss from memory.
/// assert_eq!(ns_to_cycles(180), 720);
/// ```
#[must_use]
pub const fn ns_to_cycles(ns: u64) -> CycleDelta {
    ns * (PAPER_CYCLES_PER_SECOND / 1_000_000_000)
}

/// Converts a cycle count into nanoseconds of target time at the paper's
/// 4 GHz-equivalent clock.
#[must_use]
pub const fn cycles_to_ns(cycles: CycleDelta) -> u64 {
    cycles / (PAPER_CYCLES_PER_SECOND / 1_000_000_000)
}

/// A monotonically advancing cycle clock.
///
/// The clock is the single source of "now" inside a simulation; components
/// receive the current cycle as an argument when ticked and must never keep
/// their own notion of global time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Clock {
    now: Cycle,
}

impl Clock {
    /// Creates a clock at cycle zero.
    #[must_use]
    pub fn new() -> Self {
        Self { now: 0 }
    }

    /// Returns the current cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances the clock by exactly one cycle and returns the new time.
    pub fn tick(&mut self) -> Cycle {
        self.now += 1;
        self.now
    }

    /// Advances the clock by `delta` cycles and returns the new time.
    pub fn advance(&mut self, delta: CycleDelta) -> Cycle {
        self.now += delta;
        self.now
    }

    /// Resets the clock to a specific cycle. Used only by checkpoint/recovery
    /// tests that need to replay from a known point; the production recovery
    /// path never rewinds global time (recovery consumes real cycles).
    pub fn reset_to(&mut self, cycle: Cycle) {
        self.now = cycle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_ticks() {
        let mut c = Clock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn clock_advances_by_delta() {
        let mut c = Clock::new();
        c.advance(100);
        assert_eq!(c.now(), 100);
        c.advance(0);
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn ns_conversion_roundtrips_for_multiples_of_the_clock_period() {
        for ns in [1u64, 25, 180, 1000] {
            assert_eq!(cycles_to_ns(ns_to_cycles(ns)), ns);
        }
    }

    #[test]
    fn paper_memory_latency_is_720_cycles() {
        assert_eq!(ns_to_cycles(180), 720);
    }

    #[test]
    fn reset_to_rewinds() {
        let mut c = Clock::new();
        c.advance(500);
        c.reset_to(42);
        assert_eq!(c.now(), 42);
    }
}
