//! Deterministic transient-fault injection.
//!
//! SafetyNet (the checkpoint/recovery substrate this simulator reproduces)
//! was originally built to mask *transient faults*; the speculation paper
//! reuses it for mis-speculation recovery. This module closes the loop: a
//! [`FaultPlan`] is a seed-deterministic schedule of transient faults —
//! dropped, duplicated, delayed or detectably-corrupted messages on a given
//! link, stalled or blacked-out switches, a node's inbox dropped for a
//! window — injected by hooks in the interconnect and *detected, rolled
//! back, and re-executed* by the very machinery the paper describes.
//!
//! Two properties are non-negotiable:
//!
//! 1. **Faults are part of the schedule, not wall-clock randomness.** The
//!    same `(seed, FaultPlan)` replays bit-identically; a random campaign
//!    ([`FaultConfig::Random`]) is lowered to an explicit plan up front so
//!    any run can be replayed from its plan.
//! 2. **Faults are transient.** After a recovery, every fault event that
//!    had already matured is suppressed ([`FaultDirector::suppress_through`])
//!    so re-execution runs fault-free and forward progress holds — exactly
//!    the transient-fault semantics SafetyNet was designed for.

use crate::rng::DetRng;
use crate::time::{Cycle, CycleDelta};

/// The kinds of transient fault the injector can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Silently drop one message at a link transmit (message loss).
    Drop,
    /// Transmit one message twice; the copy is tagged so the receiving
    /// endpoint's checksum/sequence model can detect it at ingest.
    Duplicate,
    /// Delay one message (and the link behind it) by `param` cycles.
    Delay,
    /// Detectably corrupt one message's payload; the receiving endpoint's
    /// checksum model catches it at ingest and discards the message.
    Corrupt,
    /// Stall a switch — no forwarding out of any of its ports — for a
    /// window of `param` cycles.
    SwitchStall,
    /// Black out a switch for a window of `param` cycles: it neither
    /// forwards nor accepts arrivals (arriving messages are lost).
    SwitchBlackout,
    /// Drop every message ejected to a node's inbox for a window of
    /// `param` cycles (a dead network interface).
    InboxDrop,
}

/// Every fault kind, in a stable order (used by sweeps and random plans).
pub const ALL_FAULT_KINDS: [FaultKind; 7] = [
    FaultKind::Drop,
    FaultKind::Duplicate,
    FaultKind::Delay,
    FaultKind::Corrupt,
    FaultKind::SwitchStall,
    FaultKind::SwitchBlackout,
    FaultKind::InboxDrop,
];

impl FaultKind {
    /// Short label used in experiment output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Delay => "delay",
            FaultKind::Corrupt => "corrupt",
            FaultKind::SwitchStall => "switch-stall",
            FaultKind::SwitchBlackout => "switch-blackout",
            FaultKind::InboxDrop => "inbox-drop",
        }
    }

    /// True for the one-shot per-message kinds (site = a link); false for
    /// the window kinds (site = a switch or an inbox).
    #[must_use]
    pub fn is_message_fault(self) -> bool {
        matches!(
            self,
            FaultKind::Drop | FaultKind::Duplicate | FaultKind::Delay | FaultKind::Corrupt
        )
    }
}

/// Where a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// An outgoing link of a switch: message faults fire on the first
    /// matching transmit at or after the event's cycle.
    Link {
        /// Source node of the link.
        node: usize,
        /// Direction index of the link (0..4, the torus directions).
        dir: usize,
        /// Restrict to one virtual network (by index), or any when `None`.
        vnet: Option<usize>,
    },
    /// A whole switch (window faults: stall / blackout).
    Switch {
        /// The switch's node index.
        node: usize,
    },
    /// A node's ejection path (window fault: inbox drop).
    Inbox {
        /// The node whose inbox is struck.
        node: usize,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the fault arms (message faults fire on the first
    /// matching transmit at or after this cycle; window faults are active
    /// in `[at, at + param)`).
    pub at: Cycle,
    /// Where it strikes.
    pub site: FaultSite,
    /// What happens.
    pub kind: FaultKind,
    /// Kind-specific parameter: delay in cycles for [`FaultKind::Delay`],
    /// window length in cycles for the window kinds, unused (0) otherwise.
    pub param: u64,
}

/// A complete, explicit fault schedule. The same `(seed, FaultPlan)` pair
/// replays a run bit-identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled events. [`FaultPlan::normalize`] sorts them by arming
    /// cycle (stable, preserving insertion order among ties).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan holding a single event.
    #[must_use]
    pub fn single(event: FaultEvent) -> Self {
        Self {
            events: vec![event],
        }
    }

    /// Number of scheduled events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sorts events by arming cycle (stable).
    pub fn normalize(&mut self) {
        self.events.sort_by_key(|e| e.at);
    }
}

/// How a run's faults are specified. Lowered to an explicit [`FaultPlan`]
/// before the run starts via [`FaultConfig::lower`], so campaigns are
/// always replayable from their plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum FaultConfig {
    /// No faults (the default; bit-identical to a build without the
    /// injector).
    #[default]
    Disabled,
    /// An explicit, hand-written schedule.
    Explicit(FaultPlan),
    /// A random campaign: roughly `rate_per_mcycle × horizon_cycles / 10⁶`
    /// events, uniform over the horizon, sites and the given kinds, drawn
    /// from a generator seeded by the run seed.
    Random {
        /// Expected fault events per million cycles.
        rate_per_mcycle: u64,
        /// The kinds to draw from (must be non-empty when the rate is
        /// nonzero).
        kinds: Vec<FaultKind>,
        /// Cycle horizon over which events are scheduled (normally the
        /// run length).
        horizon_cycles: CycleDelta,
    },
}

/// Domain-separation constant mixed into the run seed for plan lowering, so
/// the fault schedule is independent of every other per-run stream.
const FAULT_SEED_MIX: u64 = 0xFA17_5EED_0CA0_51D5;

impl FaultConfig {
    /// True when no faults will be injected.
    #[must_use]
    pub fn is_disabled(&self) -> bool {
        match self {
            FaultConfig::Disabled => true,
            FaultConfig::Explicit(plan) => plan.is_empty(),
            FaultConfig::Random {
                rate_per_mcycle,
                kinds,
                horizon_cycles,
            } => *rate_per_mcycle == 0 || kinds.is_empty() || *horizon_cycles == 0,
        }
    }

    /// Lowers this configuration to an explicit, normalized plan for a run
    /// with the given top-level `seed` on a machine of `num_nodes` nodes.
    /// Deterministic: the same `(config, seed, num_nodes)` always produces
    /// the same plan.
    #[must_use]
    pub fn lower(&self, seed: u64, num_nodes: usize) -> FaultPlan {
        match self {
            FaultConfig::Disabled => FaultPlan::none(),
            FaultConfig::Explicit(plan) => {
                let mut p = plan.clone();
                p.normalize();
                p
            }
            FaultConfig::Random {
                rate_per_mcycle,
                kinds,
                horizon_cycles,
            } => {
                let mut plan = FaultPlan::none();
                if self.is_disabled() {
                    return plan;
                }
                assert!(num_nodes > 0, "fault plan needs at least one node");
                let count = (rate_per_mcycle * horizon_cycles) / 1_000_000;
                let mut rng = DetRng::new(seed ^ FAULT_SEED_MIX);
                for _ in 0..count {
                    let at = 1 + rng.next_below(*horizon_cycles);
                    let kind = kinds[rng.next_below(kinds.len() as u64) as usize];
                    let node = rng.next_below(num_nodes as u64) as usize;
                    let site = match kind {
                        k if k.is_message_fault() => FaultSite::Link {
                            node,
                            dir: rng.next_below(4) as usize,
                            vnet: None,
                        },
                        FaultKind::SwitchStall | FaultKind::SwitchBlackout => {
                            FaultSite::Switch { node }
                        }
                        _ => FaultSite::Inbox { node },
                    };
                    // Window/delay lengths are drawn so that a meaningful
                    // fraction exceeds the sweeps' 15 000-cycle transaction
                    // timeout (3 × 5 000-cycle checkpoint intervals): those
                    // events provably force a detection + recovery.
                    let param = match kind {
                        FaultKind::Delay => 1_000 + rng.next_below(40_000),
                        FaultKind::SwitchStall => 4_000 + rng.next_below(28_000),
                        FaultKind::SwitchBlackout => 1_000 + rng.next_below(9_000),
                        FaultKind::InboxDrop => 500 + rng.next_below(4_500),
                        _ => 0,
                    };
                    plan.events.push(FaultEvent {
                        at,
                        site,
                        kind,
                        param,
                    });
                }
                plan.normalize();
                plan
            }
        }
    }
}

/// Runtime companion of a [`FaultPlan`]: arms events as simulated time
/// passes, fires one-shot message faults at matching link transmits, tracks
/// active windows, and records injection evidence for the recovery engine.
///
/// The director deliberately lives *outside* the checkpointed architectural
/// state: a rollback rewinds the machine but not the fault schedule, so a
/// fired one-shot fault never re-fires — the transient-fault semantics that
/// make re-execution succeed.
#[derive(Debug, Clone)]
pub struct FaultDirector {
    plan: FaultPlan,
    /// Index of the first plan event not yet matured (plan sorted by `at`).
    cursor: usize,
    /// Matured, unconsumed one-shot message events (plan indices).
    armed: Vec<usize>,
    /// Active window events (plan indices).
    windows: Vec<usize>,
    fires: u64,
    last_fire: Option<(Cycle, FaultKind)>,
}

impl FaultDirector {
    /// Builds a director over a plan (normalizing it first).
    #[must_use]
    pub fn new(mut plan: FaultPlan) -> Self {
        plan.normalize();
        Self {
            plan,
            cursor: 0,
            armed: Vec::new(),
            windows: Vec::new(),
            fires: 0,
            last_fire: None,
        }
    }

    /// The (normalized) plan being executed.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Matures events scheduled at or before `now` and expires finished
    /// windows. Call once per network tick, before any fault query.
    pub fn advance(&mut self, now: Cycle) {
        while self.cursor < self.plan.events.len() && self.plan.events[self.cursor].at <= now {
            let idx = self.cursor;
            self.cursor += 1;
            let ev = self.plan.events[idx];
            if ev.kind.is_message_fault() {
                self.armed.push(idx);
            } else if now < ev.at + ev.param {
                // A window fault fires (once) the moment it opens.
                self.windows.push(idx);
                self.fires += 1;
                self.last_fire = Some((ev.at, ev.kind));
            }
        }
        self.windows
            .retain(|&idx| now < self.plan.events[idx].at + self.plan.events[idx].param);
    }

    /// Consumes and returns the first armed message fault matching a
    /// transmit on link `(node, dir)` carrying virtual network `vnet`, if
    /// any. At most one fault fires per call; further matured events fire on
    /// subsequent transmits.
    pub fn message_fault(
        &mut self,
        now: Cycle,
        node: usize,
        dir: usize,
        vnet: usize,
    ) -> Option<(FaultKind, u64)> {
        let pos = self.armed.iter().position(|&idx| {
            matches!(
                self.plan.events[idx].site,
                FaultSite::Link { node: n, dir: d, vnet: v }
                    if n == node && d == dir && v.map_or(true, |v| v == vnet)
            )
        })?;
        let idx = self.armed.swap_remove(pos);
        let ev = self.plan.events[idx];
        self.fires += 1;
        self.last_fire = Some((now, ev.kind));
        Some((ev.kind, ev.param))
    }

    /// True while a stall *or* blackout window is open on `node`'s switch
    /// (a blacked-out switch does not forward either).
    #[must_use]
    pub fn switch_stalled(&self, node: usize) -> bool {
        self.windows.iter().any(|&idx| {
            let ev = self.plan.events[idx];
            matches!(ev.kind, FaultKind::SwitchStall | FaultKind::SwitchBlackout)
                && ev.site == FaultSite::Switch { node }
        })
    }

    /// True while a blackout window is open on `node`'s switch (arrivals
    /// destined to it are lost).
    #[must_use]
    pub fn switch_blacked_out(&self, node: usize) -> bool {
        self.windows.iter().any(|&idx| {
            let ev = self.plan.events[idx];
            ev.kind == FaultKind::SwitchBlackout && ev.site == FaultSite::Switch { node }
        })
    }

    /// True while an inbox-drop window is open on `node` (ejected messages
    /// are lost instead of delivered).
    #[must_use]
    pub fn inbox_dropped(&self, node: usize) -> bool {
        self.windows.iter().any(|&idx| {
            let ev = self.plan.events[idx];
            ev.kind == FaultKind::InboxDrop && ev.site == FaultSite::Inbox { node }
        })
    }

    /// Transient-fault semantics at recovery: suppresses every event that
    /// has matured by `now` — armed one-shots are disarmed, open windows
    /// close — so re-execution after the rollback runs fault-free. Events
    /// scheduled strictly after `now` are untouched (they are *new* faults).
    pub fn suppress_through(&mut self, now: Cycle) {
        self.advance(now);
        self.armed.clear();
        self.windows.clear();
    }

    /// Total faults actually injected so far (message fires + opened
    /// windows; armed-but-suppressed events are not counted).
    #[must_use]
    pub fn fires(&self) -> u64 {
        self.fires
    }

    /// The most recent injection: `(cycle, kind)`. The engine uses this as
    /// classification evidence when a transaction timeout follows a fault.
    #[must_use]
    pub fn last_fire(&self) -> Option<(Cycle, FaultKind)> {
        self.last_fire
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drop_on_link(at: Cycle, node: usize, dir: usize) -> FaultEvent {
        FaultEvent {
            at,
            site: FaultSite::Link {
                node,
                dir,
                vnet: None,
            },
            kind: FaultKind::Drop,
            param: 0,
        }
    }

    #[test]
    fn fault_kind_labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            ALL_FAULT_KINDS.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), ALL_FAULT_KINDS.len());
    }

    #[test]
    fn lowering_is_deterministic_and_respects_rate() {
        let cfg = FaultConfig::Random {
            rate_per_mcycle: 500,
            kinds: ALL_FAULT_KINDS.to_vec(),
            horizon_cycles: 100_000,
        };
        let a = cfg.lower(42, 16);
        let b = cfg.lower(42, 16);
        assert_eq!(a, b, "same (config, seed) must lower identically");
        assert_eq!(a.len(), 50, "500/Mcycle over 100k cycles = 50 events");
        assert!(a.events.windows(2).all(|w| w[0].at <= w[1].at));
        let c = cfg.lower(43, 16);
        assert_ne!(a, c, "different seeds should give different plans");
    }

    #[test]
    fn zero_rate_or_empty_kinds_lower_to_no_faults() {
        let zero = FaultConfig::Random {
            rate_per_mcycle: 0,
            kinds: ALL_FAULT_KINDS.to_vec(),
            horizon_cycles: 1_000_000,
        };
        assert!(zero.is_disabled());
        assert!(zero.lower(1, 16).is_empty());
        let no_kinds = FaultConfig::Random {
            rate_per_mcycle: 10_000,
            kinds: vec![],
            horizon_cycles: 1_000_000,
        };
        assert!(no_kinds.is_disabled());
        assert!(no_kinds.lower(1, 16).is_empty());
        assert!(FaultConfig::Disabled.lower(1, 16).is_empty());
    }

    #[test]
    fn message_fault_fires_exactly_once_on_first_matching_transmit() {
        let mut d = FaultDirector::new(FaultPlan::single(drop_on_link(100, 3, 2)));
        d.advance(50);
        assert!(d.message_fault(50, 3, 2, 0).is_none(), "not armed yet");
        d.advance(100);
        assert!(d.message_fault(100, 1, 2, 0).is_none(), "wrong node");
        assert!(d.message_fault(100, 3, 1, 0).is_none(), "wrong dir");
        let fired = d.message_fault(120, 3, 2, 1);
        assert_eq!(fired, Some((FaultKind::Drop, 0)));
        assert_eq!(d.fires(), 1);
        assert_eq!(d.last_fire(), Some((120, FaultKind::Drop)));
        assert!(d.message_fault(121, 3, 2, 1).is_none(), "one-shot");
    }

    #[test]
    fn vnet_restricted_fault_only_hits_its_network() {
        let ev = FaultEvent {
            at: 10,
            site: FaultSite::Link {
                node: 0,
                dir: 0,
                vnet: Some(2),
            },
            kind: FaultKind::Corrupt,
            param: 0,
        };
        let mut d = FaultDirector::new(FaultPlan::single(ev));
        d.advance(10);
        assert!(d.message_fault(10, 0, 0, 1).is_none());
        assert_eq!(d.message_fault(10, 0, 0, 2), Some((FaultKind::Corrupt, 0)));
    }

    #[test]
    fn windows_open_close_and_count_one_fire() {
        let ev = FaultEvent {
            at: 1_000,
            site: FaultSite::Switch { node: 5 },
            kind: FaultKind::SwitchBlackout,
            param: 500,
        };
        let mut d = FaultDirector::new(FaultPlan::single(ev));
        d.advance(999);
        assert!(!d.switch_stalled(5));
        d.advance(1_000);
        assert!(d.switch_stalled(5), "blackout also stalls");
        assert!(d.switch_blacked_out(5));
        assert!(!d.switch_blacked_out(4));
        assert_eq!(d.fires(), 1);
        d.advance(1_499);
        assert!(d.switch_blacked_out(5));
        d.advance(1_500);
        assert!(!d.switch_blacked_out(5), "window closed");
        assert_eq!(d.fires(), 1, "a window fires once, at opening");
    }

    #[test]
    fn suppress_through_disarms_matured_events_only() {
        let mut plan = FaultPlan::none();
        plan.events.push(drop_on_link(100, 0, 0));
        plan.events.push(FaultEvent {
            at: 150,
            site: FaultSite::Inbox { node: 2 },
            kind: FaultKind::InboxDrop,
            param: 10_000,
        });
        plan.events.push(drop_on_link(5_000, 0, 0));
        let mut d = FaultDirector::new(plan);
        d.advance(200);
        assert!(d.inbox_dropped(2));
        d.suppress_through(200);
        assert!(!d.inbox_dropped(2), "open window closed by recovery");
        assert!(
            d.message_fault(201, 0, 0, 0).is_none(),
            "armed one-shot disarmed"
        );
        d.advance(5_000);
        assert_eq!(
            d.message_fault(5_000, 0, 0, 0),
            Some((FaultKind::Drop, 0)),
            "future events survive suppression"
        );
    }

    #[test]
    fn explicit_plans_are_normalized_on_lowering() {
        let mut plan = FaultPlan::none();
        plan.events.push(drop_on_link(500, 0, 0));
        plan.events.push(drop_on_link(100, 1, 1));
        let lowered = FaultConfig::Explicit(plan).lower(0, 16);
        assert_eq!(lowered.events[0].at, 100);
        assert_eq!(lowered.events[1].at, 500);
    }
}
