//! Target system parameters.
//!
//! The defaults here mirror Table 2 of the paper ("Target System
//! Parameters"): 16 nodes, 128 KB 4-way L1s, a 4 MB 4-way L2, 64-byte blocks,
//! 180 ns uncontended 2-hop memory misses, link bandwidths between
//! 400 MB/s and 3.2 GB/s, a 512 KB checkpoint log buffer with 72-byte
//! entries, a 100 000-cycle checkpoint interval for the directory system
//! (3000 requests for the snooping system) and a 100-cycle register
//! checkpointing latency.

use crate::time::{ns_to_cycles, CycleDelta};

/// Coherence block (cache line) size in bytes — Table 2: "64 byte blocks".
pub const BLOCK_SIZE_BYTES: usize = 64;

/// The squarest `(width, height)` factorisation of `num_nodes` with
/// `width >= height >= 2`, or `None` when no such factorisation exists
/// (zero, one, and prime node counts only factor as degenerate 1-wide rings,
/// on which dimension-order routing and the dateline rule break down).
///
/// The paper's 16-node machine derives to 4×4; 8 nodes form a 4×2 torus and
/// 32 nodes an 8×4 torus.
#[must_use]
pub fn squarest_torus_dims(num_nodes: usize) -> Option<(usize, usize)> {
    if num_nodes < 4 {
        return None;
    }
    let mut height = (num_nodes as f64).sqrt() as usize;
    // Float truncation can land one off for large perfect squares.
    while (height + 1) * (height + 1) <= num_nodes {
        height += 1;
    }
    while height >= 2 {
        if num_nodes % height == 0 {
            return Some((num_nodes / height, height));
        }
        height -= 1;
    }
    None
}

/// How messages are routed through the torus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingPolicy {
    /// Deterministic dimension-order (X then Y) routing. Preserves
    /// point-to-point ordering because every (source, destination) pair uses a
    /// single path.
    Static,
    /// Minimal adaptive routing: at each hop the switch picks, among the
    /// productive directions, the output with the shortest queue (Section 3.1:
    /// "The adaptive routing algorithm allows messages to choose among minimal
    /// distance paths based on outgoing queue lengths in each direction").
    /// Does *not* preserve point-to-point ordering.
    Adaptive,
}

impl RoutingPolicy {
    /// Human-readable label used in experiment output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RoutingPolicy::Static => "static",
            RoutingPolicy::Adaptive => "adaptive",
        }
    }
}

/// How the network avoids (or does not avoid) deadlock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowControl {
    /// The conventional design: one virtual network per message class to
    /// avoid endpoint deadlock, and virtual channels (dateline allocation on
    /// torus rings) to avoid switch deadlock. Section 4 notes the target
    /// system needs 4 virtual networks × 2 virtual channels = 8 VCs with
    /// static routing (plus one more VC for adaptive routing).
    VirtualChannels {
        /// Virtual channels per virtual network per unidirectional link.
        channels_per_network: usize,
    },
    /// The speculatively simplified design of Section 4: no virtual networks,
    /// no virtual channels; every message class shares a single buffer pool
    /// per port. Deadlock becomes possible and is detected by transaction
    /// timeout, then resolved by SafetyNet recovery.
    SharedBuffers {
        /// Buffer capacity (in messages) of each switch input port and each
        /// endpoint ingress queue. The paper sweeps this: performance is
        /// steady at 16 and above and drops sharply at 8, where deadlocks
        /// first appear.
        buffers_per_port: usize,
    },
    /// Worst-case buffering: buffers large enough that they can never fill,
    /// making deadlock structurally impossible without virtual channels. Used
    /// as the comparison baseline in Section 5.3 ("we compare the performance
    /// of this system against a system with the same protocol running on an
    /// interconnection network with worst-case buffering").
    WorstCaseBuffering,
}

impl FlowControl {
    /// Human-readable label used in experiment output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FlowControl::VirtualChannels { .. } => "virtual-channels",
            FlowControl::SharedBuffers { .. } => "shared-buffers",
            FlowControl::WorstCaseBuffering => "worst-case-buffering",
        }
    }
}

/// How buffer *capacity* is provisioned at each node (switch + endpoint),
/// orthogonally to the buffer *structure* chosen by [`FlowControl`].
///
/// This is the third case study's boldest speculation (Section 4): instead
/// of sizing every virtual network/channel for its worst case, all message
/// classes at a node draw from one shared slot pool. Buffer-dependency
/// cycles then *can* deadlock (Figures 2 and 3); deadlock is detected by the
/// transaction timeout (three checkpoint intervals) and broken by SafetyNet
/// recovery, with per-network slot reservations during re-execution as the
/// forward-progress measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferPolicy {
    /// The conventional provisioning: each buffer owns its configured
    /// capacity outright (today's behavior, bit-identical schedules).
    VirtualNetworks,
    /// Speculative provisioning: every input-port buffer and ejection queue
    /// of a node draws from one pool of `total_slots` message slots.
    /// Individual buffers are unbounded; only the pool binds. Sized near the
    /// common case this needs far less SRAM than worst-case virtual-network
    /// sizing — at the price of possible deadlock.
    SharedPool {
        /// Message slots in each node's shared pool.
        total_slots: usize,
    },
}

impl BufferPolicy {
    /// Human-readable label used in experiment output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BufferPolicy::VirtualNetworks => "virtual-networks",
            BufferPolicy::SharedPool { .. } => "shared-pool",
        }
    }
}

/// Which variant of a coherence protocol to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolVariant {
    /// The fully designed protocol: every race, including the rare corner
    /// cases, has explicit states and transitions.
    Full,
    /// The speculatively simplified protocol: the rare corner case is *not*
    /// handled; encountering it is detected as a mis-speculation and triggers
    /// a SafetyNet recovery.
    Speculative,
}

impl ProtocolVariant {
    /// Human-readable label used in experiment output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProtocolVariant::Full => "full",
            ProtocolVariant::Speculative => "speculative",
        }
    }
}

/// Link bandwidth of the interconnection network, Table 2: "400 MB/sec to
/// 3.2 GB/sec".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkBandwidth {
    /// Megabytes per second per unidirectional link.
    pub megabytes_per_second: u64,
}

impl LinkBandwidth {
    /// The low end of the paper's sweep (and the operating point of Figure 5).
    pub const MB_400: LinkBandwidth = LinkBandwidth {
        megabytes_per_second: 400,
    };
    /// An intermediate point of the paper's sweep.
    pub const MB_800: LinkBandwidth = LinkBandwidth {
        megabytes_per_second: 800,
    };
    /// An intermediate point of the paper's sweep.
    pub const GB_1_6: LinkBandwidth = LinkBandwidth {
        megabytes_per_second: 1600,
    };
    /// The high end of the paper's sweep.
    pub const GB_3_2: LinkBandwidth = LinkBandwidth {
        megabytes_per_second: 3200,
    };

    /// Cycles needed to serialize `bytes` onto one link at a
    /// 4 GHz-equivalent cycle time (0.25 ns per cycle).
    ///
    /// `400 MB/s` moves 0.1 bytes per cycle, so a 72-byte data message takes
    /// 720 cycles of link occupancy; `3.2 GB/s` moves 0.8 bytes per cycle
    /// (90 cycles for the same message). The result is always at least one
    /// cycle.
    #[must_use]
    pub fn serialization_cycles(self, bytes: usize) -> CycleDelta {
        let bytes_per_second = self.megabytes_per_second * 1_000_000;
        // cycles = bytes / (bytes per cycle) = bytes * cycles_per_sec / bytes_per_sec
        let cycles =
            (bytes as u64 * crate::time::PAPER_CYCLES_PER_SECOND).div_ceil(bytes_per_second);
        cycles.max(1)
    }
}

/// SafetyNet checkpoint/recovery parameters (Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SafetyNetConfig {
    /// Total capacity of each node's checkpoint log buffer, in bytes
    /// (Table 2: 512 KB).
    pub log_buffer_bytes: usize,
    /// Size of one log entry in bytes (Table 2: 72 bytes — a 64-byte block
    /// pre-image plus an 8-byte address/metadata word).
    pub log_entry_bytes: usize,
    /// Checkpoint interval for the directory system, in cycles
    /// (Table 2: 100 000 cycles).
    pub checkpoint_interval_cycles: CycleDelta,
    /// Checkpoint interval for the snooping system, in coherence requests
    /// (Table 2: 3000 requests). The snooping system uses the totally ordered
    /// address network as its logical time base.
    pub checkpoint_interval_requests: u64,
    /// Latency to checkpoint processor registers (Table 2: 100 cycles).
    pub register_checkpoint_cycles: CycleDelta,
    /// How many checkpoint intervals must elapse before an outstanding
    /// coherence transaction is declared timed out (Section 4: "a processor
    /// times out on its request after three checkpoint intervals").
    pub timeout_checkpoint_intervals: u64,
    /// Maximum number of not-yet-validated checkpoints a node may hold before
    /// it must stall new speculative work (bounded by log capacity).
    pub max_outstanding_checkpoints: usize,
}

impl Default for SafetyNetConfig {
    fn default() -> Self {
        Self {
            log_buffer_bytes: 512 * 1024,
            log_entry_bytes: 72,
            checkpoint_interval_cycles: 100_000,
            checkpoint_interval_requests: 3_000,
            register_checkpoint_cycles: 100,
            timeout_checkpoint_intervals: 3,
            max_outstanding_checkpoints: 4,
        }
    }
}

impl SafetyNetConfig {
    /// Number of log entries that fit in one node's checkpoint log buffer.
    #[must_use]
    pub fn log_capacity_entries(&self) -> usize {
        self.log_buffer_bytes / self.log_entry_bytes
    }

    /// The coherence-transaction timeout in cycles for the directory system.
    #[must_use]
    pub fn transaction_timeout_cycles(&self) -> CycleDelta {
        self.checkpoint_interval_cycles * self.timeout_checkpoint_intervals
    }
}

/// The complete set of memory-system parameters for the 16-node target
/// machine of Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemorySystemConfig {
    /// Number of nodes (processor + caches + memory slice + NI). Table 2 /
    /// Section 5.1: 16.
    pub num_nodes: usize,
    /// Explicit `(width, height)` of the 2D torus. `None` (the default)
    /// derives the squarest factorisation of [`Self::num_nodes`] via
    /// [`squarest_torus_dims`]; set it to pick an elongated machine (e.g.
    /// `16×2` instead of `8×4` for 32 nodes). When set, `width × height`
    /// must equal `num_nodes` and both dimensions must be ≥ 2.
    pub torus_dims: Option<(usize, usize)>,
    /// L1 cache capacity in bytes (instruction and data each; we model the
    /// unified miss stream). Table 2: 128 KB.
    pub l1_bytes: usize,
    /// L1 associativity. Table 2: 4-way.
    pub l1_ways: usize,
    /// L1 hit latency in cycles.
    pub l1_hit_cycles: CycleDelta,
    /// L2 cache capacity in bytes. Table 2: 4 MB.
    pub l2_bytes: usize,
    /// L2 associativity. Table 2: 4-way.
    pub l2_ways: usize,
    /// L2 hit latency in cycles.
    pub l2_hit_cycles: CycleDelta,
    /// Total memory in bytes. Table 2: 2 GB.
    pub memory_bytes: u64,
    /// Uncontended two-hop miss-from-memory latency in cycles.
    /// Table 2: 180 ns = 720 cycles at 4 GHz.
    pub memory_latency_cycles: CycleDelta,
    /// DRAM access latency charged at the home node's memory controller
    /// (part of the 180 ns end-to-end budget).
    pub dram_access_cycles: CycleDelta,
    /// Interconnect link bandwidth.
    pub link_bandwidth: LinkBandwidth,
    /// Per-hop switch traversal latency in cycles (pipeline latency of a
    /// switch, independent of serialization).
    pub switch_latency_cycles: CycleDelta,
    /// Miss-status holding registers per node: how many coherence demand
    /// misses a processor may have outstanding at once. 1 models the paper's
    /// blocking in-order miss stream; larger values model the out-of-order
    /// MOSI processors of Section 5.1, which keep issuing past a miss.
    pub mshr_entries: usize,
    /// SafetyNet parameters.
    pub safetynet: SafetyNetConfig,
}

impl Default for MemorySystemConfig {
    fn default() -> Self {
        Self {
            num_nodes: 16,
            torus_dims: None,
            l1_bytes: 128 * 1024,
            l1_ways: 4,
            l1_hit_cycles: 2,
            l2_bytes: 4 * 1024 * 1024,
            l2_ways: 4,
            l2_hit_cycles: 12,
            memory_bytes: 2 * 1024 * 1024 * 1024,
            memory_latency_cycles: ns_to_cycles(180),
            dram_access_cycles: 200,
            link_bandwidth: LinkBandwidth::GB_3_2,
            switch_latency_cycles: 8,
            mshr_entries: 1,
            safetynet: SafetyNetConfig::default(),
        }
    }
}

impl MemorySystemConfig {
    /// Number of sets in the L1 cache.
    #[must_use]
    pub fn l1_sets(&self) -> usize {
        self.l1_bytes / (BLOCK_SIZE_BYTES * self.l1_ways)
    }

    /// Number of sets in the L2 cache.
    #[must_use]
    pub fn l2_sets(&self) -> usize {
        self.l2_bytes / (BLOCK_SIZE_BYTES * self.l2_ways)
    }

    /// Number of cache blocks backed by the whole machine's memory.
    #[must_use]
    pub fn memory_blocks(&self) -> u64 {
        self.memory_bytes / BLOCK_SIZE_BYTES as u64
    }

    /// The `(width, height)` of the 2D torus: the explicit
    /// [`Self::torus_dims`] when set, otherwise the squarest factorisation of
    /// [`Self::num_nodes`]. Panics on configurations [`Self::validate`]
    /// rejects (zero/prime node counts, dims that do not multiply out to
    /// `num_nodes`, 1-wide rings).
    #[must_use]
    pub fn torus_dims(&self) -> (usize, usize) {
        if let Some((w, h)) = self.torus_dims {
            assert!(
                w * h == self.num_nodes && w >= 2 && h >= 2,
                "torus_dims {w}x{h} invalid for {} nodes",
                self.num_nodes
            );
            return (w, h);
        }
        squarest_torus_dims(self.num_nodes).unwrap_or_else(|| {
            panic!(
                "num_nodes = {} has no W x H torus factorisation (both >= 2)",
                self.num_nodes
            )
        })
    }

    /// Sanity-checks the configuration, returning a list of human-readable
    /// problems (empty when the configuration is consistent).
    #[must_use]
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.num_nodes == 0 {
            problems.push("num_nodes must be positive".to_string());
        } else if let Some((w, h)) = self.torus_dims {
            if w * h != self.num_nodes {
                problems.push(format!(
                    "torus_dims {w}x{h} does not cover num_nodes = {}",
                    self.num_nodes
                ));
            } else if w < 2 || h < 2 {
                problems.push(format!(
                    "torus_dims {w}x{h} contains a degenerate 1-wide ring \
                     (dimension-order routing breaks; both dims must be >= 2)"
                ));
            }
        } else if squarest_torus_dims(self.num_nodes).is_none() {
            problems.push(format!(
                "num_nodes = {} has no W x H torus factorisation with both \
                 dimensions >= 2 (zero/prime node counts are unsupported)",
                self.num_nodes
            ));
        }
        if self.l1_bytes % (BLOCK_SIZE_BYTES * self.l1_ways) != 0 {
            problems.push("L1 size must be a multiple of block size × associativity".to_string());
        }
        if self.l2_bytes % (BLOCK_SIZE_BYTES * self.l2_ways) != 0 {
            problems.push("L2 size must be a multiple of block size × associativity".to_string());
        }
        if self.l2_bytes < self.l1_bytes {
            problems.push("L2 must be at least as large as L1 (inclusive hierarchy)".to_string());
        }
        if self.safetynet.log_entry_bytes == 0 || self.safetynet.log_buffer_bytes == 0 {
            problems.push("SafetyNet log buffer and entry sizes must be positive".to_string());
        }
        if self.mshr_entries == 0 {
            problems.push("mshr_entries must be at least 1 (a node needs one MSHR)".to_string());
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_table_2() {
        let c = MemorySystemConfig::default();
        assert_eq!(c.num_nodes, 16);
        assert_eq!(c.l1_bytes, 128 * 1024);
        assert_eq!(c.l1_ways, 4);
        assert_eq!(c.l2_bytes, 4 * 1024 * 1024);
        assert_eq!(c.l2_ways, 4);
        assert_eq!(c.memory_bytes, 2 * 1024 * 1024 * 1024);
        assert_eq!(c.memory_latency_cycles, 720); // 180 ns at 4 GHz
        assert_eq!(c.safetynet.log_buffer_bytes, 512 * 1024);
        assert_eq!(c.safetynet.log_entry_bytes, 72);
        assert_eq!(c.safetynet.checkpoint_interval_cycles, 100_000);
        assert_eq!(c.safetynet.checkpoint_interval_requests, 3_000);
        assert_eq!(c.safetynet.register_checkpoint_cycles, 100);
        assert_eq!(c.mshr_entries, 1, "default models a blocking miss stream");
        assert!(c.validate().is_empty());
    }

    #[test]
    fn derived_geometry_is_consistent() {
        let c = MemorySystemConfig::default();
        assert_eq!(c.l1_sets(), 128 * 1024 / (64 * 4));
        assert_eq!(c.l2_sets(), 4 * 1024 * 1024 / (64 * 4));
        assert_eq!(c.torus_dims(), (4, 4));
        assert_eq!(c.memory_blocks(), 2 * 1024 * 1024 * 1024 / 64);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = MemorySystemConfig {
            num_nodes: 13, // prime: only factors as a 1-wide ring
            ..MemorySystemConfig::default()
        };
        assert!(!c.validate().is_empty());
        c.num_nodes = 16;
        c.l2_bytes = 64 * 1024; // smaller than L1
        assert!(!c.validate().is_empty());
    }

    #[test]
    fn squarest_factorisation_derivation() {
        assert_eq!(squarest_torus_dims(16), Some((4, 4)));
        assert_eq!(squarest_torus_dims(32), Some((8, 4)));
        assert_eq!(squarest_torus_dims(8), Some((4, 2)));
        assert_eq!(squarest_torus_dims(64), Some((8, 8)));
        assert_eq!(squarest_torus_dims(128), Some((16, 8)));
        assert_eq!(squarest_torus_dims(12), Some((4, 3)));
        assert_eq!(squarest_torus_dims(6), Some((3, 2)));
        // No W×H factorisation with both dims >= 2.
        assert_eq!(squarest_torus_dims(0), None);
        assert_eq!(squarest_torus_dims(1), None);
        assert_eq!(squarest_torus_dims(2), None);
        assert_eq!(squarest_torus_dims(3), None);
        assert_eq!(squarest_torus_dims(7), None);
        assert_eq!(squarest_torus_dims(13), None);
    }

    #[test]
    fn validate_rejects_zero_nodes_and_one_wide_rings() {
        let mut c = MemorySystemConfig {
            num_nodes: 0,
            ..MemorySystemConfig::default()
        };
        assert!(!c.validate().is_empty(), "0 nodes must be rejected");
        // Explicit 1-wide ring.
        c.num_nodes = 8;
        c.torus_dims = Some((8, 1));
        assert!(!c.validate().is_empty(), "1-wide ring must be rejected");
        // Explicit dims that do not cover the node count.
        c.torus_dims = Some((4, 4));
        assert!(!c.validate().is_empty(), "dims must cover num_nodes");
        // A valid rectangular machine passes.
        c.torus_dims = Some((4, 2));
        assert!(c.validate().is_empty());
        c.torus_dims = None;
        assert!(c.validate().is_empty());
    }

    #[test]
    fn torus_dims_resolution_prefers_explicit_dims() {
        let mut c = MemorySystemConfig {
            num_nodes: 32,
            ..MemorySystemConfig::default()
        };
        assert_eq!(c.torus_dims(), (8, 4), "squarest derivation");
        c.torus_dims = Some((16, 2));
        assert_eq!(c.torus_dims(), (16, 2), "explicit dims win");
    }

    #[test]
    fn torus_dims_answers_square_and_rectangular_machines_alike() {
        let c = MemorySystemConfig::default();
        assert_eq!(c.torus_dims(), (4, 4));
        let c64 = MemorySystemConfig {
            num_nodes: 64,
            ..MemorySystemConfig::default()
        };
        assert_eq!(c64.torus_dims(), (8, 8));
        let c8 = MemorySystemConfig {
            num_nodes: 8,
            ..MemorySystemConfig::default()
        };
        assert_eq!(c8.torus_dims(), (4, 2));
    }

    #[test]
    fn link_serialization_matches_bandwidth() {
        // 400 MB/s = 0.1 B/cycle at 4 GHz: 72 bytes take 720 cycles.
        assert_eq!(LinkBandwidth::MB_400.serialization_cycles(72), 720);
        // 3.2 GB/s = 0.8 B/cycle: 72 bytes take 90 cycles.
        assert_eq!(LinkBandwidth::GB_3_2.serialization_cycles(72), 90);
        // Control message of 8 bytes at 400 MB/s: 80 cycles.
        assert_eq!(LinkBandwidth::MB_400.serialization_cycles(8), 80);
        // Serialization is never zero cycles.
        assert_eq!(LinkBandwidth::GB_3_2.serialization_cycles(0), 1);
    }

    #[test]
    fn safetynet_derived_values() {
        let s = SafetyNetConfig::default();
        assert_eq!(s.log_capacity_entries(), 512 * 1024 / 72);
        assert_eq!(s.transaction_timeout_cycles(), 300_000);
    }

    #[test]
    fn buffer_policy_labels_are_stable() {
        assert_eq!(BufferPolicy::VirtualNetworks.label(), "virtual-networks");
        assert_eq!(
            BufferPolicy::SharedPool { total_slots: 16 }.label(),
            "shared-pool"
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(RoutingPolicy::Static.label(), "static");
        assert_eq!(RoutingPolicy::Adaptive.label(), "adaptive");
        assert_eq!(ProtocolVariant::Full.label(), "full");
        assert_eq!(ProtocolVariant::Speculative.label(), "speculative");
        assert_eq!(
            FlowControl::VirtualChannels {
                channels_per_network: 2
            }
            .label(),
            "virtual-channels"
        );
        assert_eq!(
            FlowControl::SharedBuffers {
                buffers_per_port: 16
            }
            .label(),
            "shared-buffers"
        );
        assert_eq!(
            FlowControl::WorstCaseBuffering.label(),
            "worst-case-buffering"
        );
    }
}
