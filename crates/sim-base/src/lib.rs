//! # specsim-base
//!
//! Simulation kernel primitives shared by every crate in the
//! *speculation-for-simplicity* multiprocessor simulator, a reproduction of
//! Sorin, Martin, Hill and Wood, *"Using Speculation to Simplify
//! Multiprocessor Design"*, IPDPS 2004.
//!
//! This crate deliberately contains **no policy**: it provides the vocabulary
//! the rest of the workspace speaks —
//!
//! * [`time`] — the cycle clock and time conversion helpers,
//! * [`ids`] — node identifiers, physical addresses and cache-block math,
//! * [`config`] — the target-system parameters of the paper's Table 2,
//! * [`fault`] — seed-deterministic transient-fault schedules and the
//!   runtime director that injects them (SafetyNet's original job was
//!   masking exactly these faults),
//! * [`rng`] — a small, deterministic, save/restorable random number
//!   generator (checkpoint recovery rewinds generators, so RNG state must be
//!   checkpointable),
//! * [`stats`] — counters, running mean/standard deviation, histograms and
//!   utilization trackers used by the evaluation harness,
//! * [`queue`] — bounded message queues, the port abstraction through which
//!   controllers and the interconnection network exchange messages,
//! * [`msgsize`] — the message size model (control vs. data messages) used by
//!   the link serialization model,
//! * [`telemetry`] — deterministic observability primitives: log2-bucketed
//!   latency histograms, engine-mode timelines, cycle-windowed samplers and
//!   speculation-lifecycle event traces (all stamped in simulated cycles),
//! * [`workers`] — a persistent barrier-phase thread pool for the engine's
//!   deterministic intra-run parallel phase split.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod active;
pub mod config;
pub mod fault;
pub mod ids;
pub mod msgsize;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod workers;

pub use active::ActiveSet;
pub use config::{
    squarest_torus_dims, BufferPolicy, FlowControl, LinkBandwidth, MemorySystemConfig,
    ProtocolVariant, RoutingPolicy, SafetyNetConfig, BLOCK_SIZE_BYTES,
};
pub use fault::{
    FaultConfig, FaultDirector, FaultEvent, FaultKind, FaultPlan, FaultSite, ALL_FAULT_KINDS,
};
pub use ids::{Address, BlockAddr, NodeId};
pub use msgsize::{MessageSize, CONTROL_MSG_BYTES, DATA_MSG_BYTES};
pub use queue::MsgQueue;
pub use rng::DetRng;
pub use stats::{Counter, Histogram, RunningStats, UtilizationTracker};
pub use telemetry::{
    EngineMode, FabricCounters, Log2Histogram, ModeTimeline, ModeTransition, SpecEvent,
    TelemetryConfig, TelemetryRecorder, WindowCounters, WindowSample, ALL_ENGINE_MODES,
    ENGINE_MODE_COUNT,
};
pub use time::{Cycle, CycleDelta};
pub use workers::WorkerPool;
