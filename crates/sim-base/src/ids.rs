//! Node identifiers, physical addresses and cache-block arithmetic.
//!
//! The target system (Table 2) is a 16-node shared-memory multiprocessor with
//! 64-byte coherence blocks. Memory (and the directory) is block-interleaved
//! across the nodes: the home node of a block is a simple function of its
//! block address, which is how real ccNUMA machines of this era (SGI Origin,
//! Alpha 21364 systems) distributed the directory.

use crate::config::BLOCK_SIZE_BYTES;

/// Identifies one node of the multiprocessor (processor + caches + a slice of
/// memory/directory + network interface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Returns the node index as a `usize` for indexing per-node vectors.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u16::try_from(v).expect("node index exceeds u16"))
    }
}

/// A full physical byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Address(pub u64);

impl Address {
    /// The cache block this address falls in.
    #[must_use]
    pub fn block(self) -> BlockAddr {
        BlockAddr(self.0 / BLOCK_SIZE_BYTES as u64)
    }

    /// The byte offset of this address within its cache block.
    #[must_use]
    pub fn block_offset(self) -> u64 {
        self.0 % BLOCK_SIZE_BYTES as u64
    }
}

/// A cache-block address (a physical address shifted right by the block
/// offset bits). All coherence activity is keyed by `BlockAddr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// The first byte address covered by this block.
    #[must_use]
    pub fn base_address(self) -> Address {
        Address(self.0 * BLOCK_SIZE_BYTES as u64)
    }

    /// The home node of this block in a system of `num_nodes` nodes.
    ///
    /// Memory is block-interleaved: block `b`'s directory entry and backing
    /// storage live at node `b mod num_nodes`.
    #[must_use]
    pub fn home_node(self, num_nodes: usize) -> NodeId {
        assert!(num_nodes > 0, "system must have at least one node");
        NodeId::from((self.0 % num_nodes as u64) as usize)
    }

    /// The cache set this block maps to for a cache with `num_sets` sets.
    #[must_use]
    pub fn cache_set(self, num_sets: usize) -> usize {
        assert!(num_sets > 0, "cache must have at least one set");
        (self.0 % num_sets as u64) as usize
    }
}

impl std::fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn address_to_block_and_offset() {
        let a = Address(64 * 7 + 13);
        assert_eq!(a.block(), BlockAddr(7));
        assert_eq!(a.block_offset(), 13);
        assert_eq!(a.block().base_address(), Address(64 * 7));
    }

    #[test]
    fn home_node_interleaves_blocks() {
        assert_eq!(BlockAddr(0).home_node(16), NodeId(0));
        assert_eq!(BlockAddr(1).home_node(16), NodeId(1));
        assert_eq!(BlockAddr(16).home_node(16), NodeId(0));
        assert_eq!(BlockAddr(17).home_node(16), NodeId(1));
    }

    #[test]
    fn node_id_display_and_index() {
        let n = NodeId(5);
        assert_eq!(n.index(), 5);
        assert_eq!(n.to_string(), "N5");
        assert_eq!(NodeId::from(9usize), NodeId(9));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn home_node_of_zero_node_system_panics() {
        let _ = BlockAddr(3).home_node(0);
    }

    proptest! {
        #[test]
        fn block_base_address_is_aligned(addr in 0u64..1u64 << 40) {
            let block = Address(addr).block();
            prop_assert_eq!(block.base_address().0 % BLOCK_SIZE_BYTES as u64, 0);
            // The base address plus the offset reconstructs the original address.
            prop_assert_eq!(
                block.base_address().0 + Address(addr).block_offset(),
                addr
            );
        }

        #[test]
        fn home_node_is_always_in_range(block in 0u64..1u64 << 34, nodes in 1usize..128) {
            let home = BlockAddr(block).home_node(nodes);
            prop_assert!(home.index() < nodes);
        }

        #[test]
        fn cache_set_is_always_in_range(block in 0u64..1u64 << 34, sets in 1usize..1 << 16) {
            prop_assert!(BlockAddr(block).cache_set(sets) < sets);
        }
    }
}
